"""In-memory state of the incremental pipeline, and its snapshot form.

:class:`IncrementalState` owns everything the append path maintains
between batches:

* the document list and per-document caches (stats terms, per-extractor
  outputs, Yahoo candidate counts, merged ``I(d)``, context terms);
* the two live :class:`~repro.text.vocabulary.Vocabulary` objects
  (original and contextualized) updated in place;
* the postings index ``term -> {doc_id}`` over the expanded term sets
  (what the hierarchy stage reads instead of scanning every document);
* the selection pre-test set (terms with ``df_C > df`` — the only
  possible shift candidates) maintained from per-batch df deltas;
* per-term version counters driving the subsumption pair-overlap cache.

Serialization is deliberately minimal: only the document payloads and
per-document caches are written (sets sorted, canonical JSON upstream);
vocabularies, postings, and the pre-test set are derived data and are
rebuilt on load.  That keeps snapshots byte-deterministic and makes it
impossible for a checkpoint to carry internally inconsistent statistics.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from ..corpus.document import Document, GoldAnnotation
from ..errors import StorageError
from ..text.vocabulary import Vocabulary

#: Schema tag of the serialized state section (inside the checkpoint).
STATE_SCHEMA = "repro.incremental-state/1"


@dataclass
class DocumentState:
    """Everything cached for one ingested document."""

    stats_terms: list[str]
    """Normalized countable terms (ordered, with duplicates) — the
    document's contribution to the original vocabulary."""
    outputs: list[list[str]]
    """Per-extractor important-term outputs, extractor order."""
    candidates: dict[int, list[tuple[str, int]]] = field(default_factory=dict)
    """Extractor index -> cached ``(term, tf)`` scoring candidates (only
    for background-dependent extractors)."""
    important: list[str] = field(default_factory=list)
    """Merged ``I(d)``."""
    context_terms: list[str] = field(default_factory=list)
    """``C(d)`` surface forms."""
    seen_keys: list[str] = field(default_factory=list)
    """Normalized context keys in first-seen order."""

    def expanded_set(self, term_set: set[str]) -> set[str]:
        """The document's expanded term set (original ∪ context keys)."""
        expanded = set(term_set)
        expanded.update(self.seen_keys)
        return expanded


class IncrementalState:
    """Mutable corpus state shared by the incremental extractor."""

    def __init__(self) -> None:
        self.documents: list[Document] = []
        self.doc_states: dict[str, DocumentState] = {}
        self.term_sets: dict[str, set[str]] = {}
        self.expanded_sets: dict[str, set[str]] = {}
        self.original_vocabulary = Vocabulary()
        self.contextualized_vocabulary = Vocabulary()
        self.postings: dict[str, set[str]] = {}
        self.term_versions: dict[str, int] = {}
        self.pretest: set[str] = set()
        self.batches_done: list[str] = []

    # -- bookkeeping ---------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self.documents)

    def has_document(self, doc_id: str) -> bool:
        return doc_id in self.doc_states

    def add_posting(self, term: str, doc_id: str) -> None:
        docs = self.postings.get(term)
        if docs is None:
            docs = self.postings[term] = set()
        docs.add(doc_id)
        self.term_versions[term] = self.term_versions.get(term, 0) + 1

    def remove_posting(self, term: str, doc_id: str) -> None:
        docs = self.postings.get(term)
        if docs is None:
            return
        docs.discard(doc_id)
        if not docs:
            del self.postings[term]
        self.term_versions[term] = self.term_versions.get(term, 0) + 1

    def update_pretest(self, touched: set[str]) -> int:
        """Re-test ``df_C > df`` membership for the touched terms only.

        Returns the number of membership flips — the per-batch
        ``incremental.pretest_changes`` counter.
        """
        original = self.original_vocabulary
        contextualized = self.contextualized_vocabulary
        flips = 0
        for term in touched:
            member = contextualized.df(term) > original.df(term)
            if member:
                if term not in self.pretest:
                    self.pretest.add(term)
                    flips += 1
            elif term in self.pretest:
                self.pretest.discard(term)
                flips += 1
        return flips

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> dict:
        """Snapshot the state as a JSON-safe, byte-deterministic dict.

        Only source-of-truth data is written; every set is sorted here
        (and every dict is sorted by the canonical-JSON writer), so two
        equal states always serialize to identical bytes.
        """
        docs_payload: dict[str, dict] = {}
        for doc_id, doc_state in self.doc_states.items():
            docs_payload[doc_id] = {
                "stats_terms": list(doc_state.stats_terms),
                "outputs": [list(terms) for terms in doc_state.outputs],
                "candidates": {
                    str(index): [[term, tf] for term, tf in pairs]
                    for index, pairs in doc_state.candidates.items()
                },
                "important": list(doc_state.important),
                "context_terms": list(doc_state.context_terms),
                "seen_keys": list(doc_state.seen_keys),
            }
        return {
            "schema": STATE_SCHEMA,
            "documents": [document_payload(doc) for doc in self.documents],
            "docs": docs_payload,
            "batches_done": list(self.batches_done),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "IncrementalState":
        """Rebuild the full state (vocabularies, postings, pre-test set)
        from a snapshot's source-of-truth data."""
        schema = payload.get("schema")
        if schema != STATE_SCHEMA:
            raise StorageError(
                f"incremental state schema {schema!r} != {STATE_SCHEMA!r}"
            )
        state = cls()
        state.batches_done = [str(b) for b in payload.get("batches_done", [])]
        docs_payload = payload.get("docs", {})
        for doc_payload in payload.get("documents", []):
            document = document_from_payload(doc_payload)
            cached = docs_payload.get(document.doc_id)
            if cached is None:
                raise StorageError(
                    f"snapshot missing cache for document {document.doc_id!r}"
                )
            doc_state = DocumentState(
                stats_terms=[str(t) for t in cached["stats_terms"]],
                outputs=[[str(t) for t in terms] for terms in cached["outputs"]],
                candidates={
                    int(index): [(str(term), int(tf)) for term, tf in pairs]
                    for index, pairs in cached.get("candidates", {}).items()
                },
                important=[str(t) for t in cached["important"]],
                context_terms=[str(t) for t in cached["context_terms"]],
                seen_keys=[str(t) for t in cached["seen_keys"]],
            )
            state.ingest_restored(document, doc_state)
        state.rebuild_pretest()
        return state

    def ingest_restored(self, document: Document, doc_state: DocumentState) -> None:
        """Attach one restored document and derive its statistics."""
        doc_id = document.doc_id
        if doc_id in self.doc_states:
            raise StorageError(f"duplicate document in snapshot: {doc_id!r}")
        self.documents.append(document)
        self.doc_states[doc_id] = doc_state
        term_set = set(doc_state.stats_terms)
        self.term_sets[doc_id] = term_set
        self.original_vocabulary.add_document(doc_state.stats_terms)
        expanded = doc_state.expanded_set(term_set)
        self.expanded_sets[doc_id] = expanded
        self.contextualized_vocabulary.add_document(expanded)
        for term in expanded:
            docs = self.postings.get(term)
            if docs is None:
                docs = self.postings[term] = set()
            docs.add(doc_id)

    def rebuild_pretest(self) -> None:
        """Derive the pre-test set from scratch (used after a restore)."""
        original = self.original_vocabulary
        self.pretest = {
            term
            for term, df_c in self.contextualized_vocabulary.df_map().items()
            if df_c > original.df(term)
        }


def document_payload(document: Document) -> dict:
    """JSON-safe form of one :class:`Document` (checkpoints, batch files)."""
    payload: dict = {
        "doc_id": document.doc_id,
        "title": document.title,
        "body": document.body,
        "source": document.source,
        "published": document.published.isoformat(),
    }
    if document.gold is not None:
        payload["gold"] = {
            "topic": document.gold.topic,
            "entity_names": list(document.gold.entity_names),
            "facet_terms": list(document.gold.facet_terms),
            "leaked_terms": list(document.gold.leaked_terms),
        }
    return payload


def document_from_payload(payload: dict) -> Document:
    """Inverse of :func:`document_payload`."""
    gold_payload = payload.get("gold")
    gold = None
    if gold_payload is not None:
        gold = GoldAnnotation(
            topic=str(gold_payload["topic"]),
            entity_names=tuple(gold_payload.get("entity_names", [])),
            facet_terms=tuple(gold_payload.get("facet_terms", [])),
            leaked_terms=tuple(gold_payload.get("leaked_terms", [])),
        )
    return Document(
        doc_id=str(payload["doc_id"]),
        title=str(payload["title"]),
        body=str(payload["body"]),
        source=str(payload.get("source", "The New York Times")),
        published=datetime.date.fromisoformat(payload["published"]),
        gold=gold,
    )
