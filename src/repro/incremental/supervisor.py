"""The streaming supervisor: ingest batch files, checkpoint, resume.

This is the process-level loop behind ``repro stream``.  A *batch
directory* holds JSONL files (one document payload per line, canonical
JSON); lexicographic file order is ingestion order, so producers name
files ``batch-000.jsonl``, ``batch-001.jsonl``, ...  The supervisor
feeds each not-yet-ingested file to an
:class:`~repro.incremental.extractor.IncrementalExtractor`, letting the
extractor checkpoint between batches.

Crash recovery is entirely data-driven: a snapshot records the batch
ids it covers (``batches_done``), so after a restart the supervisor
restores the newest valid snapshot and simply skips those files.
Batches ingested after the last checkpoint are replayed — by the
incremental/batch equivalence contract, replaying them reproduces the
exact pre-crash state, so a crash at *any* point loses no information
and changes no output.

:class:`FaultInjector` is the test harness's crash trigger: wired into
the :class:`~repro.incremental.checkpoint.CheckpointStore` fault hook,
it raises :class:`CrashInjected` the n-th time a chosen checkpoint
stage (``pre-checkpoint`` / ``mid-write`` / ``post-write``) is reached,
simulating a kill at that precise moment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.pipeline import FacetExtractor
from ..corpus.document import Document
from ..errors import StorageError
from ..observability.logging import get_logger
from .checkpoint import CheckpointStore, atomic_write_text, canonical_json
from .extractor import IncrementalBatchReport, IncrementalExtractor
from .state import document_from_payload, document_payload

log = get_logger(__name__)

#: Batch files recognised inside an input directory.
BATCH_PATTERN = "*.jsonl"


class CrashInjected(RuntimeError):
    """Raised by :class:`FaultInjector` to simulate a crash."""


class FaultInjector:
    """Raise :class:`CrashInjected` at a chosen checkpoint stage.

    Parameters
    ----------
    stage:
        One of ``"pre-checkpoint"``, ``"mid-write"``, ``"post-write"``.
    occurrence:
        Fire on the n-th (1-based) time the stage is reached; the
        injector disarms after firing, so a resumed run completes.
    """

    STAGES = ("pre-checkpoint", "mid-write", "post-write")

    def __init__(self, stage: str, occurrence: int = 1) -> None:
        if stage not in self.STAGES:
            raise ValueError(f"unknown fault stage: {stage!r}")
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self.stage = stage
        self.occurrence = occurrence
        self.fired = False
        self._seen = 0

    def __call__(self, stage: str) -> None:
        if self.fired or stage != self.stage:
            return
        self._seen += 1
        if self._seen >= self.occurrence:
            self.fired = True
            raise CrashInjected(f"injected crash at {stage} #{self._seen}")


def write_batch_file(path: str | Path, documents: list[Document]) -> Path:
    """Write one batch file: one canonical-JSON document per line.

    Written atomically (CKPT001): a producer crash must never leave a
    half-written batch for the supervisor to ingest.
    """
    path = Path(path)
    lines = [canonical_json(document_payload(doc)) for doc in documents]
    atomic_write_text(path, "".join(lines))
    return path


def read_batch_file(path: str | Path) -> list[Document]:
    """Parse a batch file written by :func:`write_batch_file`."""
    path = Path(path)
    documents: list[Document] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise StorageError(f"unreadable batch file {path}: {exc}") from exc
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            documents.append(document_from_payload(json.loads(line)))
        except (ValueError, KeyError) as exc:
            raise StorageError(f"{path}:{number}: bad document: {exc}") from exc
    return documents


def split_into_batches(
    documents: list[Document], batches: int
) -> list[list[Document]]:
    """Split a corpus into ``batches`` contiguous, near-even slices.

    Every slice is returned even when empty — an empty batch file is a
    valid (if pointless) unit of ingestion and the harness exercises it.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    base, extra = divmod(len(documents), batches)
    out: list[list[Document]] = []
    cursor = 0
    for index in range(batches):
        size = base + (1 if index < extra else 0)
        out.append(documents[cursor : cursor + size])
        cursor += size
    return out


def make_batch_files(
    directory: str | Path, documents: list[Document], batches: int
) -> list[Path]:
    """Materialize a corpus as numbered batch files in ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for index, slice_ in enumerate(split_into_batches(documents, batches)):
        paths.append(
            write_batch_file(directory / f"batch-{index:06d}.jsonl", slice_)
        )
    return paths


@dataclass
class StreamReport:
    """What one supervisor run ingested (and what it could skip)."""

    ingested: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    documents: int = 0
    resumed_at: int | None = None
    """Document count restored from a checkpoint, None for a cold start."""
    batch_reports: list[IncrementalBatchReport] = field(default_factory=list)

    def format_summary(self) -> str:
        resumed = (
            f"resumed with {self.resumed_at} documents"
            if self.resumed_at is not None
            else "cold start"
        )
        return (
            f"{resumed}; ingested {len(self.ingested)} batches "
            f"({self.documents} documents), skipped {len(self.skipped)} "
            "already-checkpointed"
        )


class StreamSupervisor:
    """One supervised ingestion pass over a batch directory.

    The supervisor is single-use: it owns a freshly built pipeline,
    restores state from ``run_dir`` (unless ``resume=False``), ingests
    every pending batch file, and leaves the extractor available via
    :attr:`extractor` for inspection.  After a crash, construct a new
    supervisor over the same ``run_dir`` — recovery is automatic.
    """

    def __init__(
        self,
        pipeline: FacetExtractor,
        run_dir: str | Path,
        checkpoint_every: int = 1,
        keep_snapshots: int = 3,
        resume: bool = True,
        fault_hook: FaultInjector | None = None,
    ) -> None:
        self._store = CheckpointStore(
            run_dir, keep_snapshots=keep_snapshots, fault_hook=fault_hook
        )
        if resume:
            self._extractor = IncrementalExtractor.restore(
                pipeline, self._store, checkpoint_every=checkpoint_every
            )
        else:
            self._extractor = IncrementalExtractor(
                pipeline, checkpoint=self._store, checkpoint_every=checkpoint_every
            )

    @property
    def extractor(self) -> IncrementalExtractor:
        return self._extractor

    @property
    def store(self) -> CheckpointStore:
        return self._store

    def run(self, input_dir: str | Path) -> StreamReport:
        """Ingest every pending batch file of ``input_dir``, in order.

        A crash (any exception, including an injected one) propagates
        after the extractor's last completed checkpoint — exactly the
        situation :meth:`IncrementalExtractor.restore` recovers from.
        """
        input_dir = Path(input_dir)
        extractor = self._extractor
        report = StreamReport(
            resumed_at=extractor.document_count
            if extractor.batches_done
            else None
        )
        done = set(extractor.batches_done)
        batch_files = sorted(input_dir.glob(BATCH_PATTERN))
        log.info(
            "stream.start",
            input=str(input_dir),
            batches=len(batch_files),
            already_done=len(done),
        )
        for path in batch_files:
            batch_id = path.name
            if batch_id in done:
                report.skipped.append(batch_id)
                continue
            documents = read_batch_file(path)
            batch_report = extractor.append(documents, batch_id=batch_id)
            report.ingested.append(batch_id)
            report.documents += len(documents)
            report.batch_reports.append(batch_report)
        log.info(
            "stream.done",
            ingested=len(report.ingested),
            skipped=len(report.skipped),
            documents=report.documents,
            corpus=extractor.document_count,
            facet_terms=len(extractor.facet_terms),
        )
        return report
