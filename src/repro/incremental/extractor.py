"""The incremental (append-only) facet extraction engine.

:class:`IncrementalExtractor` wraps a configured
:class:`~repro.core.pipeline.FacetExtractor` and maintains its result
across batches of appended documents.  The output contract is strict:
after any sequence of :meth:`~IncrementalExtractor.append` calls, the
selected facet terms and hierarchies are **byte-for-byte identical** to
a from-scratch :meth:`FacetExtractor.run` on the union corpus.  The
differential harness in ``tests/test_incremental_equivalence.py``
enforces this across batch schedules, worker counts and query modes.

The contract is met by construction, not by luck — every stage reuses
the exact code the batch pipeline runs:

* Step 1 statistics use the same ``_stats_chunk`` worker and update the
  shared :class:`~repro.text.vocabulary.Vocabulary` in place, which
  keeps the background the Yahoo extractor adopted permanently current.
* Because that background changes with every batch, *every* cached
  document's tf·idf scores can shift.  Re-tokenizing the corpus would
  defeat the point, so the extractor caches each document's candidate
  ``(term, tf)`` pairs and re-runs only
  :meth:`~repro.extractors.significant_terms.SignificantTermsExtractor.score_candidates`
  against the updated statistics (idf memoized per distinct df).
  Documents whose merged ``I(d)`` actually changed become *dirty*.
* Step 2 re-expands only new + dirty documents through
  :func:`~repro.core.contextualize.expand_items` (resource answers are
  corpus-independent and memoized); the contextualized vocabulary is
  repaired with :meth:`Vocabulary.remove_document` / ``add_document``.
* Step 3 keeps a *pre-test set* — the terms with ``df_C > df``, the
  only possible shift candidates — maintained from per-batch df deltas,
  and recomputes shift and likelihood statistics for those terms only
  (per-batch :class:`~repro.core.shifts.ShiftTables` +
  :class:`~repro.core.likelihood.LikelihoodTables`).  The final sort
  key ``(-score, term)`` is total, so iterating the pre-test set in
  sorted order yields exactly the batch pipeline's ranking.
* Hierarchy construction reads per-term document sets from the
  maintained postings index (no corpus scan) and runs the shared
  :func:`~repro.core.hierarchy.build_hierarchies_from_doc_sets` with a
  version-keyed pair-overlap cache: co-occurrence counts of term pairs
  whose postings did not change since the last batch are reused instead
  of recomputing set intersections.

Checkpointing is delegated to a
:class:`~repro.incremental.checkpoint.CheckpointStore`; a snapshot is
written after every ``checkpoint_every`` batches and
:meth:`IncrementalExtractor.restore` resumes from the newest valid one.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from functools import partial

from ..core.annotate import AnnotatedDatabase, _stats_chunk, merge_important
from ..core.contextualize import ContextualizedDatabase, expand_items
from ..core.hierarchy import FacetHierarchy, build_hierarchies_from_doc_sets
from ..core.likelihood import LikelihoodTables
from ..core.pipeline import FacetExtractionResult, FacetExtractor
from ..core.selection import FacetTermCandidate
from ..core.shifts import ShiftTables
from ..corpus.document import Document
from ..extractors.base import TermExtractor
from ..extractors.significant_terms import SignificantTermsExtractor
from ..observability import Observability
from ..observability import names as obs_names
from ..observability.logging import get_logger
from ..parallel import chunked, map_chunks
from ..text.interning import MemoizedChunk
from ..text.tokenizer import normalize_term
from .checkpoint import CheckpointStore
from .state import DocumentState, IncrementalState

log = get_logger(__name__)

#: Extractor classification: output never depends on corpus statistics.
MODE_STATIC = "static"
#: Corpus-dependent via tf·idf — cached candidates are re-scored.
MODE_RESCORE = "rescore"
#: Unknown background consumer — conservatively re-extracted per batch.
MODE_REEXTRACT = "reextract"

_EMPTY: frozenset[str] = frozenset()


@dataclass(frozen=True)
class IncrementalBatchReport:
    """What one :meth:`IncrementalExtractor.append` call did."""

    batch_id: str
    documents: int
    dirty_documents: int
    touched_terms: int
    pretest_changes: int
    facet_terms: int
    facets: int
    checkpointed: bool
    seconds: float


def _annotate_chunk(
    extractors: list[TermExtractor],
    modes: list[str],
    documents: list[Document],
) -> list[tuple[str, list[list[str]], dict[int, list[tuple[str, int]]]]]:
    """Per-chunk Step 1 worker for *new* documents.

    Returns, per document, the per-extractor outputs plus the cached
    scoring candidates of every re-scorable extractor (the expensive
    tokenization half, kept so later batches never redo it).
    """
    out: list[tuple[str, list[list[str]], dict[int, list[tuple[str, int]]]]] = []
    for document in documents:
        outputs: list[list[str]] = []
        candidates: dict[int, list[tuple[str, int]]] = {}
        for index, (extractor, mode) in enumerate(zip(extractors, modes)):
            if mode == MODE_RESCORE:
                assert isinstance(extractor, SignificantTermsExtractor)
                pairs = extractor.candidate_counts(document)
                candidates[index] = pairs
                outputs.append(extractor.score_candidates(pairs))
            else:
                outputs.append(extractor.extract(document))
        out.append((document.doc_id, outputs, candidates))
    return out


class IncrementalExtractor:
    """Append-only facet extraction with the batch pipeline's results.

    Parameters
    ----------
    pipeline:
        A configured (ideally freshly built) batch pipeline; its
        extractors, resources, selection settings and parallel/
        observability configuration are all honoured.
    checkpoint:
        Optional checkpoint store; when given, a snapshot is written
        after every ``checkpoint_every``-th batch.
    checkpoint_every:
        Checkpoint cadence in batches.
    state:
        A restored :class:`IncrementalState` (used by :meth:`restore`);
        None starts from an empty corpus.
    """

    def __init__(
        self,
        pipeline: FacetExtractor,
        checkpoint: CheckpointStore | None = None,
        checkpoint_every: int = 1,
        state: IncrementalState | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if pipeline.statistic not in ("log-likelihood", "chi-square"):
            raise ValueError(f"unknown statistic: {pipeline.statistic!r}")
        self._pipeline = pipeline
        self._checkpoint = checkpoint
        self._checkpoint_every = checkpoint_every
        self._state = state if state is not None else IncrementalState()
        self._facet_terms: list[FacetTermCandidate] = []
        self._hierarchies: list[FacetHierarchy] = []
        self._overlap_cache: dict[tuple[str, str], tuple[int, int, int]] = {}
        self._pair_hits = 0
        self._pair_misses = 0
        self._modes = self._bind_extractors()
        if self._state.document_count:
            obs = self._pipeline.observability
            with obs.collect():
                self._select_and_build(obs)

    # -- wiring --------------------------------------------------------------

    def _bind_extractors(self) -> list[str]:
        """Attach the live vocabulary as background and classify extractors."""
        vocabulary = self._state.original_vocabulary
        modes: list[str] = []
        for extractor in self._pipeline.extractors:
            extractor.use_background(vocabulary)
            if isinstance(extractor, SignificantTermsExtractor):
                if extractor.background_adopted:
                    if extractor.background is not vocabulary:
                        raise ValueError(
                            "pipeline extractor already adopted a different "
                            "background corpus; build a fresh pipeline for "
                            "incremental use"
                        )
                    modes.append(MODE_RESCORE)
                else:
                    # Explicit fixed background: corpus-independent.
                    modes.append(MODE_STATIC)
            elif type(extractor).use_background is TermExtractor.use_background:
                modes.append(MODE_STATIC)
            else:
                modes.append(MODE_REEXTRACT)
        return modes

    # -- public surface ------------------------------------------------------

    @property
    def state(self) -> IncrementalState:
        return self._state

    @property
    def document_count(self) -> int:
        return self._state.document_count

    @property
    def batches_done(self) -> list[str]:
        return list(self._state.batches_done)

    @property
    def facet_terms(self) -> list[FacetTermCandidate]:
        """Current selection, ranked exactly as the batch pipeline ranks."""
        return list(self._facet_terms)

    @property
    def hierarchies(self) -> list[FacetHierarchy]:
        return list(self._hierarchies)

    def facet_term_strings(self) -> list[str]:
        return [candidate.term for candidate in self._facet_terms]

    @classmethod
    def restore(
        cls,
        pipeline: FacetExtractor,
        checkpoint: CheckpointStore,
        checkpoint_every: int = 1,
    ) -> "IncrementalExtractor":
        """Resume from the newest valid snapshot (empty state when none)."""
        loaded = checkpoint.load_latest()
        state: IncrementalState | None = None
        if loaded is not None:
            sequence, payload = loaded
            state = IncrementalState.from_payload(payload)
            log.info(
                "incremental.restored",
                sequence=sequence,
                documents=state.document_count,
                batches=len(state.batches_done),
            )
        return cls(
            pipeline,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            state=state,
        )

    def append(
        self,
        documents: Iterable[Document],
        batch_id: str | None = None,
    ) -> IncrementalBatchReport:
        """Ingest one batch and bring the extraction result up to date.

        Raises :class:`ValueError` on a document id already ingested (or
        repeated within the batch) — silently re-counting a document
        would corrupt every downstream statistic.
        """
        docs = list(documents)
        state = self._state
        new_ids: set[str] = set()
        for document in docs:
            if state.has_document(document.doc_id) or document.doc_id in new_ids:
                raise ValueError(f"duplicate document id: {document.doc_id!r}")
            new_ids.add(document.doc_id)
        obs = self._pipeline.observability
        batch_index = len(state.batches_done)
        label = batch_id if batch_id is not None else f"batch-{batch_index:06d}"
        start = time.perf_counter()
        with obs.collect(), obs.tracer.span(
            obs_names.SPAN_INCREMENTAL_BATCH, batch=label, documents=len(docs)
        ) as batch_span:
            dirty: list[str] = []
            flips = 0
            touched: set[str] = set()
            if docs:
                touched = self._ingest(docs, obs)
                dirty = self._rescore(new_ids, obs)
                touched |= self._expand(new_ids, dirty, obs)
                flips = state.update_pretest(touched)
                self._select_and_build(obs)
            # An empty batch changes no statistic: the current result is
            # already the union result, only the ledger advances.
            state.batches_done.append(label)
            checkpointed = self._maybe_checkpoint(obs)
            batch_span.add("dirty_documents", len(dirty))
            batch_span.add("touched_terms", len(touched))
            if obs.metrics is not None:
                metrics = obs.metrics
                metrics.increment(obs_names.INCREMENTAL_BATCHES)
                metrics.increment(obs_names.INCREMENTAL_DOCUMENTS, len(docs))
                metrics.increment(obs_names.INCREMENTAL_DIRTY_DOCUMENTS, len(dirty))
                metrics.increment(obs_names.INCREMENTAL_TOUCHED_TERMS, len(touched))
                metrics.increment(obs_names.INCREMENTAL_PRETEST_CHANGES, flips)
                metrics.gauge(obs_names.INCREMENTAL_CORPUS_SIZE, state.document_count)
                metrics.gauge(obs_names.INCREMENTAL_PRETEST_SIZE, len(state.pretest))
        seconds = time.perf_counter() - start
        log.info(
            "incremental.batch_done",
            batch=label,
            documents=len(docs),
            corpus=state.document_count,
            dirty=len(dirty),
            facet_terms=len(self._facet_terms),
            seconds=round(seconds, 3),
        )
        return IncrementalBatchReport(
            batch_id=label,
            documents=len(docs),
            dirty_documents=len(dirty),
            touched_terms=len(touched),
            pretest_changes=flips,
            facet_terms=len(self._facet_terms),
            facets=len(self._hierarchies),
            checkpointed=checkpointed,
            seconds=seconds,
        )

    def checkpoint_now(self) -> bool:
        """Force a snapshot regardless of cadence (False without a store)."""
        if self._checkpoint is None:
            return False
        sequence = len(self._state.batches_done)
        self._checkpoint.save(self._state.to_payload(), sequence)
        return True

    def snapshot_result(self) -> FacetExtractionResult:
        """Materialize the current state as a batch-pipeline result.

        Databases are rebuilt in ingestion order with copied
        vocabularies/sets, so the snapshot compares equal — byte for
        byte under canonical serialization — to ``FacetExtractor.run``
        on the union corpus, and mutating it never corrupts the live
        state.
        """
        state = self._state
        annotated = AnnotatedDatabase(
            documents=list(state.documents),
            important_terms={
                doc_id: list(doc_state.important)
                for doc_id, doc_state in state.doc_states.items()
            },
            vocabulary=state.original_vocabulary.copy(),
            term_sets={
                doc_id: set(terms) for doc_id, terms in state.term_sets.items()
            },
        )
        contextualized = ContextualizedDatabase(
            annotated=annotated,
            context_terms={
                doc_id: list(doc_state.context_terms)
                for doc_id, doc_state in state.doc_states.items()
            },
            expanded_sets={
                doc_id: set(expanded)
                for doc_id, expanded in state.expanded_sets.items()
            },
            vocabulary=state.contextualized_vocabulary.copy(),
        )
        return FacetExtractionResult(
            documents=list(state.documents),
            annotated=annotated,
            contextualized=contextualized,
            facet_terms=list(self._facet_terms),
            hierarchies=list(self._hierarchies),
            resource_stats={
                resource.cache_namespace(): resource.cache_stats
                for resource in self._pipeline.resources
            },
        )

    # -- stages --------------------------------------------------------------

    def _ingest(self, docs: list[Document], obs: Observability) -> set[str]:
        """Step 1 for the new documents: statistics, then extraction.

        Statistics land first so the shared background vocabulary is the
        full union *before* any extractor scores a document — the exact
        two-pass order of :func:`repro.core.annotate.annotate_database`.
        """
        state = self._state
        parallel = self._pipeline.parallel
        touched: set[str] = set()
        with obs.tracer.span(
            obs_names.SPAN_INCREMENTAL_ANNOTATION, documents=len(docs)
        ):
            chunks = chunked(docs, max(1, parallel.resolve_chunk_size(len(docs))))
            # The memo only deduplicates tokenize/sentences/normalize
            # calls within a chunk — outputs are unchanged, so the
            # byte-identity contract with the batch pipeline holds.
            stats_worker: Callable[[list[Document]], object] = (
                MemoizedChunk(_stats_chunk) if parallel.columnar else _stats_chunk
            )
            stats: dict[str, list[str]] = {}
            for chunk_result in map_chunks(stats_worker, chunks, parallel, obs=obs):
                for doc_id, normalized in chunk_result:
                    stats[doc_id] = normalized
            for document in docs:
                normalized = stats[document.doc_id]
                state.documents.append(document)
                state.doc_states[document.doc_id] = DocumentState(
                    stats_terms=normalized, outputs=[]
                )
                state.term_sets[document.doc_id] = set(normalized)
                state.original_vocabulary.add_document(normalized)
                touched.update(normalized)
            extract = partial(_annotate_chunk, self._pipeline.extractors, self._modes)
            if parallel.columnar:
                extract = MemoizedChunk(extract)
            for chunk_result in map_chunks(extract, chunks, parallel, obs=obs):
                for doc_id, outputs, candidates in chunk_result:
                    doc_state = state.doc_states[doc_id]
                    doc_state.outputs = outputs
                    doc_state.candidates = candidates
                    doc_state.important = merge_important(outputs)
        return touched

    def _rescore(self, new_ids: set[str], obs: Observability) -> list[str]:
        """Refresh corpus-dependent outputs of previously ingested docs.

        Returns the *dirty* document ids — those whose merged ``I(d)``
        changed and therefore need re-expansion.  Documents whose
        re-scored outputs merge to the same ``I(d)`` keep their cached
        context untouched.
        """
        state = self._state
        extractors = self._pipeline.extractors
        rescore = [i for i, mode in enumerate(self._modes) if mode == MODE_RESCORE]
        reextract = [
            i for i, mode in enumerate(self._modes) if mode == MODE_REEXTRACT
        ]
        dirty: list[str] = []
        if not (rescore or reextract) or state.document_count == len(new_ids):
            return dirty
        with obs.tracer.span(obs_names.SPAN_INCREMENTAL_RESCORE) as span:
            idf = self._memoized_idf()
            rescored = 0
            for document in state.documents:
                doc_id = document.doc_id
                if doc_id in new_ids:
                    continue
                doc_state = state.doc_states[doc_id]
                changed = False
                for index in rescore:
                    extractor = extractors[index]
                    assert isinstance(extractor, SignificantTermsExtractor)
                    pairs = doc_state.candidates.get(index, [])
                    rescored += len(pairs)
                    output = extractor.score_candidates(pairs, idf)
                    if output != doc_state.outputs[index]:
                        doc_state.outputs[index] = output
                        changed = True
                for index in reextract:
                    output = extractors[index].extract(document)
                    if output != doc_state.outputs[index]:
                        doc_state.outputs[index] = output
                        changed = True
                if changed:
                    important = merge_important(doc_state.outputs)
                    if important != doc_state.important:
                        doc_state.important = important
                        dirty.append(doc_id)
            span.add("dirty_documents", len(dirty))
            if obs.metrics is not None:
                obs.metrics.increment(
                    obs_names.INCREMENTAL_RESCORED_CANDIDATES, rescored
                )
        return dirty

    def _memoized_idf(self) -> Callable[[str], float]:
        """The Yahoo idf against the live background, memoized per df.

        Same expression as
        :meth:`SignificantTermsExtractor._idf` — re-scoring a whole
        corpus hits only as many log evaluations as there are distinct
        document frequencies.
        """
        vocabulary = self._state.original_vocabulary
        n = vocabulary.document_count
        if n == 0:
            return lambda term: 1.0
        by_df: dict[int, float] = {}

        def idf(term: str) -> float:
            df = vocabulary.df(term)
            value = by_df.get(df)
            if value is None:
                value = by_df[df] = math.log((n + 1) / (df + 1)) + 1.0
            return value

        return idf

    def _expand(
        self, new_ids: set[str], dirty: list[str], obs: Observability
    ) -> set[str]:
        """Step 2 for new + dirty documents; repairs df statistics.

        Returns the terms whose contextualized df changed (posting set
        edits), i.e. the candidates for pre-test membership flips.
        """
        state = self._state
        parallel = self._pipeline.parallel
        pending = new_ids | set(dirty)
        touched: set[str] = set()
        if not pending:
            return touched
        items = [
            (document.doc_id, state.doc_states[document.doc_id].important)
            for document in state.documents
            if document.doc_id in pending
        ]
        with obs.tracer.span(
            obs_names.SPAN_INCREMENTAL_CONTEXTUALIZATION, documents=len(items)
        ):
            expand = partial(expand_items, self._pipeline.resources)
            if parallel.columnar:
                expand = MemoizedChunk(expand)
            chunks = chunked(items, max(1, parallel.resolve_chunk_size(len(items))))
            for chunk_result in map_chunks(expand, chunks, parallel, obs=obs):
                for doc_id, merged, seen_keys in chunk_result:
                    doc_state = state.doc_states[doc_id]
                    doc_state.context_terms = merged
                    doc_state.seen_keys = seen_keys
                    expanded = doc_state.expanded_set(state.term_sets[doc_id])
                    previous = state.expanded_sets.get(doc_id)
                    if previous is None:
                        state.contextualized_vocabulary.add_document(expanded)
                        for term in expanded:
                            state.add_posting(term, doc_id)
                        touched.update(expanded)
                    elif previous != expanded:
                        state.contextualized_vocabulary.remove_document(previous)
                        state.contextualized_vocabulary.add_document(expanded)
                        for term in previous - expanded:
                            state.remove_posting(term, doc_id)
                        for term in expanded - previous:
                            state.add_posting(term, doc_id)
                        touched.update(previous ^ expanded)
                    state.expanded_sets[doc_id] = expanded
        return touched

    def _select_and_build(self, obs: Observability) -> None:
        """Step 3 + hierarchy over the pre-test set only."""
        state = self._state
        pipeline = self._pipeline
        with obs.tracer.span(obs_names.SPAN_INCREMENTAL_SELECTION) as span:
            n = max(state.document_count, 1)
            shifts = ShiftTables(
                state.original_vocabulary, state.contextualized_vocabulary
            )
            tables = LikelihoodTables(n)
            score_of = (
                tables.log_likelihood_ratio
                if pipeline.statistic == "log-likelihood"
                else tables.chi_square
            )
            candidates: list[FacetTermCandidate] = []
            for term in sorted(state.pretest):
                df = shifts.df_original(term)
                df_c = shifts.df_contextualized(term)
                shift_f = df_c - df
                if shift_f <= 0:
                    continue
                shift_r = shifts.rank_shift(term)
                if pipeline.require_both_shifts and shift_r <= 0:
                    continue
                candidates.append(
                    FacetTermCandidate(
                        term=term,
                        df_original=df,
                        df_contextualized=df_c,
                        shift_f=shift_f,
                        shift_r=shift_r,
                        score=score_of(df, df_c),
                    )
                )
            candidates.sort(key=lambda c: (-c.score, c.term))
            top_k = pipeline.top_k
            self._facet_terms = candidates if top_k is None else candidates[:top_k]
            span.add("pretest_terms", len(state.pretest))
            span.add("selected", len(self._facet_terms))
            if obs.metrics is not None:
                obs.metrics.increment(
                    obs_names.INCREMENTAL_SCORED_TERMS, len(candidates)
                )
        self._hierarchies = []
        if pipeline.build_hierarchies:
            with obs.tracer.span(obs_names.SPAN_INCREMENTAL_HIERARCHY) as span:
                self._hierarchies = self._build_hierarchies(obs)
                span.add("facets", len(self._hierarchies))

    def _build_hierarchies(self, obs: Observability) -> list[FacetHierarchy]:
        state = self._state
        pipeline = self._pipeline
        terms = [normalize_term(c.term) for c in self._facet_terms]
        doc_sets: dict[str, set[str]] = {}
        for term in terms:
            docs = state.postings.get(term)
            if docs:
                doc_sets[term] = docs
        self._pair_hits = 0
        self._pair_misses = 0
        hierarchies = build_hierarchies_from_doc_sets(
            terms,
            doc_sets,
            state.document_count,
            threshold=pipeline.subsumption_threshold,
            edge_validator=pipeline.edge_validator,
            overlap=self._overlap,
        )
        # Keep the pair cache bounded to pairs over the current facet
        # terms; everything else can never be asked for again cheaply.
        current = set(terms)
        self._overlap_cache = {
            pair: entry
            for pair, entry in self._overlap_cache.items()
            if pair[0] in current and pair[1] in current
        }
        if obs.metrics is not None:
            obs.metrics.increment(
                obs_names.INCREMENTAL_PAIR_CACHE_HITS, self._pair_hits
            )
            obs.metrics.increment(
                obs_names.INCREMENTAL_PAIR_CACHE_MISSES, self._pair_misses
            )
        return hierarchies

    def _overlap(self, x: str, y: str) -> int:
        """Version-cached ``|docs(x) ∩ docs(y)|`` over the postings index."""
        state = self._state
        version_x = state.term_versions.get(x, 0)
        version_y = state.term_versions.get(y, 0)
        key = (x, y)
        entry = self._overlap_cache.get(key)
        if entry is not None and entry[0] == version_x and entry[1] == version_y:
            self._pair_hits += 1
            return entry[2]
        count = len(state.postings.get(x, _EMPTY) & state.postings.get(y, _EMPTY))
        self._overlap_cache[key] = (version_x, version_y, count)
        self._pair_misses += 1
        return count

    # -- checkpointing -------------------------------------------------------

    def _maybe_checkpoint(self, obs: Observability) -> bool:
        if self._checkpoint is None:
            return False
        if len(self._state.batches_done) % self._checkpoint_every != 0:
            return False
        with obs.tracer.span(obs_names.SPAN_INCREMENTAL_CHECKPOINT) as span:
            sequence = len(self._state.batches_done)
            path = self._checkpoint.save(self._state.to_payload(), sequence)
            span.add("sequence", sequence)
            # A path is a tag, not a counter: Span.add sums floats and
            # raises on strings once tracing is actually enabled.
            span.set(path=str(path))
        return True
