"""Crash-safe checkpoint storage for the incremental pipeline.

Snapshots are versioned JSON files (``checkpoint-000042.json``, schema
``repro.checkpoint/1``) inside a run directory.  Every write goes
through :func:`atomic_write_text`: the payload lands in a temp file that
is fsynced and then :func:`os.replace`-d over the target, so a reader
never observes a half-written checkpoint — a crash leaves either the
old file, the new file, or a stray ``*.tmp`` that the store removes on
open.  The lint rule CKPT001 enforces that no other module under
:mod:`repro.incremental` opens checkpoint files for writing directly.

Recovery scans the run directory for the highest-sequence snapshot whose
schema and content checksum validate, falling back to earlier snapshots
if the newest is damaged; the ``MANIFEST.json`` pointer is a
convenience for humans and tooling, never trusted over the scan.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections.abc import Callable
from pathlib import Path

from ..errors import StorageError
from ..observability.logging import get_logger

log = get_logger(__name__)

#: Schema tag carried by every snapshot (bump on layout changes).
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Schema tag of the manifest pointer file.
MANIFEST_SCHEMA = "repro.checkpoint-manifest/1"

#: File name of the manifest pointer.
MANIFEST_NAME = "MANIFEST.json"

_SNAPSHOT_RE = re.compile(r"^checkpoint-(\d{6})\.json$")


class CheckpointError(StorageError):
    """A checkpoint could not be written or validated."""


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, fixed separators, trailing \\n.

    Every on-disk artifact of the incremental pipeline is serialized
    through this function so equal states produce equal bytes (the
    DET002 invariant, extended to files).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def payload_checksum(state: dict) -> str:
    """sha256 over the canonical form of a snapshot's ``state`` section."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def atomic_write_text(
    path: Path,
    text: str,
    before_replace: Callable[[], None] | None = None,
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives next to the target (same filesystem, so the
    rename is atomic) under a deterministic ``<name>.tmp`` suffix and is
    fsynced before the rename; a crash at any point leaves the previous
    target intact.  ``before_replace`` is a test-only fault-injection
    hook fired between the temp write and the rename.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if before_replace is not None:
            before_replace()
        os.replace(tmp, path)
    except BaseException:
        # Leave no ambiguity behind: the target is untouched and the
        # temp file is removed so a resume never reads it.
        try:
            os.unlink(tmp)
        except OSError:
            log.warning("checkpoint.tmp_unlink_failed", path=str(tmp))
        raise
    _fsync_directory(path.parent)


def atomic_write_json(
    path: Path,
    payload: dict,
    before_replace: Callable[[], None] | None = None,
) -> None:
    """Canonical-JSON variant of :func:`atomic_write_text`."""
    atomic_write_text(path, canonical_json(payload), before_replace=before_replace)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        log.warning("checkpoint.dir_fsync_failed", path=str(directory))
    finally:
        os.close(fd)


class CheckpointStore:
    """Versioned snapshots of incremental state under one run directory.

    Parameters
    ----------
    directory:
        The run directory; created on first use.  Stray ``*.tmp`` files
        from an earlier crash are removed when the store opens.
    keep_snapshots:
        Snapshots retained after each successful save (older sequences
        are pruned).
    fault_hook:
        Test-only crash-injection callback, fired with stage names
        (``"pre-checkpoint"``, ``"mid-write"``, ``"post-write"``) at
        the matching points of :meth:`save`.
    """

    def __init__(
        self,
        directory: str | Path,
        keep_snapshots: int = 3,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        if keep_snapshots < 1:
            raise CheckpointError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.keep_snapshots = keep_snapshots
        self._fault_hook = fault_hook
        self.directory.mkdir(parents=True, exist_ok=True)
        self.clean_orphans()

    # -- helpers -------------------------------------------------------------

    def _fire(self, stage: str) -> None:
        if self._fault_hook is not None:
            self._fault_hook(stage)

    def snapshot_path(self, sequence: int) -> Path:
        return self.directory / f"checkpoint-{sequence:06d}.json"

    def sequences(self) -> list[int]:
        """Snapshot sequences present on disk, ascending."""
        found: list[int] = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match is not None:
                found.append(int(match.group(1)))
        return sorted(found)

    def clean_orphans(self) -> int:
        """Remove ``*.tmp`` leftovers from interrupted writes."""
        removed = 0
        for entry in self.directory.glob("*.tmp"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                log.warning("checkpoint.orphan_unlink_failed", path=str(entry))
        if removed:
            log.info("checkpoint.orphans_removed", count=removed)
        return removed

    # -- save ----------------------------------------------------------------

    def save(self, state: dict, sequence: int) -> Path:
        """Write snapshot ``sequence`` and update the manifest pointer.

        The snapshot carries the schema tag, the sequence, and a
        checksum over the canonical state; the write order (snapshot
        first, manifest second, both atomic) guarantees that whatever
        the crash point, recovery finds a consistent prefix of history.
        """
        if sequence < 0:
            raise CheckpointError(f"sequence must be >= 0, got {sequence}")
        self._fire("pre-checkpoint")
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "sequence": sequence,
            "checksum": payload_checksum(state),
            "state": state,
        }
        path = self.snapshot_path(sequence)
        atomic_write_json(
            path, payload, before_replace=lambda: self._fire("mid-write")
        )
        self._fire("post-write")
        atomic_write_json(
            self.directory / MANIFEST_NAME,
            {
                "schema": MANIFEST_SCHEMA,
                "latest": path.name,
                "sequence": sequence,
            },
        )
        self.prune()
        log.info("checkpoint.saved", sequence=sequence, path=str(path))
        return path

    def prune(self) -> None:
        """Drop snapshots beyond the newest ``keep_snapshots``."""
        sequences = self.sequences()
        for sequence in sequences[: -self.keep_snapshots]:
            try:
                self.snapshot_path(sequence).unlink()
            except OSError:
                log.warning("checkpoint.prune_failed", sequence=sequence)

    # -- load ----------------------------------------------------------------

    def load(self, sequence: int) -> dict:
        """Load and validate one snapshot's state section."""
        path = self.snapshot_path(sequence)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{path}: schema {payload.get('schema')!r} != {CHECKPOINT_SCHEMA!r}"
            )
        if payload.get("sequence") != sequence:
            # A snapshot renamed or copied over another one: the file
            # name and its embedded sequence must agree.
            raise CheckpointError(
                f"{path}: embedded sequence {payload.get('sequence')!r} "
                f"does not match file name sequence {sequence}"
            )
        state = payload.get("state")
        if not isinstance(state, dict):
            raise CheckpointError(f"{path}: missing state section")
        if payload.get("checksum") != payload_checksum(state):
            raise CheckpointError(f"{path}: checksum mismatch")
        return state

    def load_latest(self) -> tuple[int, dict] | None:
        """The newest snapshot that validates, or None when none do.

        Damaged snapshots are skipped (with a log line) rather than
        aborting recovery — the supervisor then replays the batches the
        lost snapshots covered, which by the equivalence contract
        reproduces the exact same state.
        """
        for sequence in reversed(self.sequences()):
            try:
                return sequence, self.load(sequence)
            except CheckpointError as exc:
                log.warning(
                    "checkpoint.skipping_damaged",
                    sequence=sequence,
                    error=str(exc),
                )
        return None
