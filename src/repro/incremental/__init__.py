"""Incremental (streaming) facet extraction with checkpoint/resume.

The news-firehose deployment of the paper's pipeline: documents arrive
in batches, and :class:`IncrementalExtractor` keeps the selected facet
terms and hierarchies **byte-for-byte identical** to a from-scratch run
on the union corpus while doing only incremental work — cached
candidate re-scoring, dirty-document re-expansion, pre-test-set
selection, and postings-backed hierarchy repair (see
:mod:`repro.incremental.extractor` for how each stage shares the batch
pipeline's code).

:class:`CheckpointStore` persists versioned, checksummed snapshots via
atomic temp-file + rename writes; :class:`StreamSupervisor` (the
``repro stream`` CLI) ingests batch files from a directory, checkpoints
between batches, and resumes from the newest valid snapshot after a
crash.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    payload_checksum,
)
from .extractor import IncrementalBatchReport, IncrementalExtractor
from .state import DocumentState, IncrementalState
from .supervisor import (
    CrashInjected,
    FaultInjector,
    StreamReport,
    StreamSupervisor,
    make_batch_files,
    read_batch_file,
    split_into_batches,
    write_batch_file,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "CrashInjected",
    "DocumentState",
    "FaultInjector",
    "IncrementalBatchReport",
    "IncrementalExtractor",
    "IncrementalState",
    "StreamReport",
    "StreamSupervisor",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
    "make_batch_files",
    "payload_checksum",
    "read_batch_file",
    "split_into_batches",
    "write_batch_file",
]
