"""Convenience builder wiring the full default pipeline.

Assembles the world, substrates, all three extractors, and all four
resources into a ready-to-run :class:`~repro.core.pipeline.FacetExtractor`
— the "All x All" configuration of the paper's tables.  Individual
extractor/resource subsets (for the per-cell table experiments) are
selected with :meth:`FacetPipelineBuilder.with_extractors` /
:meth:`FacetPipelineBuilder.with_resources`.
"""

from __future__ import annotations

import time

from .config import ParallelConfig, ReproConfig
from .core.evidence import LinkEvidence
from .core.pipeline import FacetExtractor
from .db.resource_cache import PersistentResourceCache
from .extractors.base import ExtractorName
from .extractors.registry import build_extractors
from .kb.world import World, build_world
from .observability import Observability
from .observability.logging import get_logger
from .resources.base import ResourceName
from .resources.composite import CompositeResource
from .resources.registry import ResourceSubstrates, build_resources
from .text.vocabulary import Vocabulary

log = get_logger(__name__)


class FacetPipelineBuilder:
    """Fluent construction of configured pipelines over shared substrates.

    Substrates (the simulated Wikipedia, web, and WordNet) are built once
    per builder and shared across every pipeline it produces, so sweeping
    the extractor x resource grid does not rebuild them 20 times.
    """

    def __init__(
        self,
        config: ReproConfig | None = None,
        world: World | None = None,
        background: Vocabulary | None = None,
    ) -> None:
        self.config = config or ReproConfig()
        start = time.perf_counter()
        self.world = world or build_world(self.config)
        self.substrates = ResourceSubstrates.build(self.world, self.config)
        log.debug(
            "builder.substrates_ready",
            seed=self.config.seed,
            scale=self.config.scale,
            seconds=round(time.perf_counter() - start, 3),
        )
        self.edge_evidence = LinkEvidence(
            wikipedia=self.substrates.wikipedia,
            lexicon=self.substrates.lookup,
        )
        self._background = background
        self._extractor_names: list[ExtractorName] = list(ExtractorName)
        self._resource_names: list[ResourceName] = list(ResourceName)
        self._top_k = 200
        self._statistic = "log-likelihood"
        self._require_both_shifts = True
        self._build_hierarchies = True
        self._parallel = self.config.parallel
        self._resource_cache: PersistentResourceCache | None = None
        self._observability: Observability | None = None

    # -- fluent configuration ----------------------------------------------------

    def with_extractors(self, names: list[ExtractorName | str]) -> "FacetPipelineBuilder":
        self._extractor_names = [
            ExtractorName(n) if isinstance(n, str) else n for n in names
        ]
        return self

    def with_resources(self, names: list[ResourceName | str]) -> "FacetPipelineBuilder":
        self._resource_names = [
            ResourceName(n) if isinstance(n, str) else n for n in names
        ]
        return self

    def with_background(self, background: Vocabulary) -> "FacetPipelineBuilder":
        """Background statistics for the Yahoo-style extractor's idf."""
        self._background = background
        return self

    def with_top_k(self, top_k: int) -> "FacetPipelineBuilder":
        self._top_k = top_k
        return self

    def with_statistic(self, statistic: str) -> "FacetPipelineBuilder":
        self._statistic = statistic
        return self

    def with_shift_requirement(self, require_both: bool) -> "FacetPipelineBuilder":
        self._require_both_shifts = require_both
        return self

    def without_hierarchies(self) -> "FacetPipelineBuilder":
        self._build_hierarchies = False
        return self

    def with_parallel(self, parallel: ParallelConfig) -> "FacetPipelineBuilder":
        """Batch-execution settings (workers, chunking, cache path)."""
        self._parallel = parallel
        self._resource_cache = None
        return self

    def with_observability(
        self, observability: Observability | None
    ) -> "FacetPipelineBuilder":
        """Tracing/metrics bundle for built pipelines (None disables)."""
        self._observability = observability
        return self

    # -- construction -------------------------------------------------------------

    def _shared_resource_cache(self) -> PersistentResourceCache | None:
        """Open the persistent cache once; every built pipeline shares it."""
        if self._parallel.cache_path is None:
            return None
        if self._resource_cache is None:
            self._resource_cache = PersistentResourceCache(self._parallel.cache_path)
        return self._resource_cache

    def build(self) -> FacetExtractor:
        """Materialize the configured pipeline."""
        extractors = build_extractors(
            list(self._extractor_names),
            wikipedia=self.substrates.wikipedia,
            background=self._background,
        )
        resources = build_resources(
            list(self._resource_names), self.substrates, self.config
        )
        for resource in resources:
            resource.resize_memory_cache(self._parallel.memory_cache_size)
        if len(resources) > 1:
            resource_list = [CompositeResource(resources)]
        else:
            resource_list = resources
        log.debug(
            "builder.pipeline_built",
            extractors=[name.value for name in self._extractor_names],
            resources=[name.value for name in self._resource_names],
            workers=self._parallel.workers,
        )
        return FacetExtractor(
            extractors=extractors,
            resources=resource_list,
            top_k=self._top_k,
            statistic=self._statistic,
            require_both_shifts=self._require_both_shifts,
            build_hierarchies=self._build_hierarchies,
            edge_validator=self.edge_evidence,
            parallel=self._parallel,
            resource_cache=self._shared_resource_cache(),
            cache_fingerprint=self.config.cache_fingerprint(),
            observability=self._observability,
        )

    def build_incremental(self, checkpoint_dir: str | None = None):
        """Materialize an incremental extractor over a fresh pipeline.

        Checkpointing follows ``config.incremental``: when a checkpoint
        directory is configured (or passed here, which wins), snapshots
        are written on the configured cadence and — unless
        ``config.incremental.resume`` is off — the newest valid one is
        restored before the first append.
        """
        from .incremental import CheckpointStore, IncrementalExtractor

        settings = self.config.incremental
        directory = (
            checkpoint_dir if checkpoint_dir is not None else settings.checkpoint_dir
        )
        pipeline = self.build()
        if directory is None:
            return IncrementalExtractor(
                pipeline, checkpoint_every=settings.checkpoint_every
            )
        store = CheckpointStore(directory, keep_snapshots=settings.keep_snapshots)
        if settings.resume:
            return IncrementalExtractor.restore(
                pipeline, store, checkpoint_every=settings.checkpoint_every
            )
        return IncrementalExtractor(
            pipeline, checkpoint=store, checkpoint_every=settings.checkpoint_every
        )
