"""Google as a context resource: frequent terms from result snippets."""

from __future__ import annotations

from ..websim.engine import SearchEngineSim
from .base import ExternalResource, ResourceName

#: Context terms mined per query.
DEFAULT_CONTEXT_TERMS = 30

#: Result pages whose snippets are mined.
DEFAULT_RESULT_COUNT = 10


class GoogleResource(ExternalResource):
    """Query the (simulated) web, mine titles and snippets.

    Per the paper's implementation note, only titles and snippets are
    processed — never the full pages — "introducing a relatively large
    number of noisy terms", which is the mechanism behind Google's lower
    precision in Tables V-VII.
    """

    name = ResourceName.GOOGLE
    remote = True

    def __init__(
        self,
        engine: SearchEngineSim,
        context_term_count: int = DEFAULT_CONTEXT_TERMS,
        result_count: int = DEFAULT_RESULT_COUNT,
    ) -> None:
        super().__init__()
        if context_term_count <= 0:
            raise ValueError(
                f"context_term_count must be positive, got {context_term_count}"
            )
        self._engine = engine
        self._context_term_count = context_term_count
        self._result_count = result_count

    def _query(self, term: str) -> list[str]:
        return self._engine.frequent_snippet_terms(
            term,
            limit=self._context_term_count,
            result_count=self._result_count,
        )

    def cache_namespace(self) -> str:
        return (
            f"GoogleResource(limit={self._context_term_count},"
            f"results={self._result_count})"
        )
