"""The Wikipedia link graph as a context resource."""

from __future__ import annotations

from ..config import PAPER_WIKI_GRAPH_TOP_K
from ..wikipedia.graph import WikipediaGraph
from .base import ExternalResource, ResourceName


class WikipediaGraphResource(ExternalResource):
    """Top-k linked entries of the page a term resolves to.

    The derived context contains "both more general and more specific
    terms" (Section IV-B); the comparative frequency analysis downstream
    is what isolates the general ones.
    """

    name = ResourceName.WIKI_GRAPH

    def __init__(
        self, graph: WikipediaGraph, top_k: int = PAPER_WIKI_GRAPH_TOP_K
    ) -> None:
        super().__init__()
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self._graph = graph
        self._top_k = top_k

    def _query(self, term: str) -> list[str]:
        return [n.title for n in self._graph.neighbours(term, k=self._top_k)]

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk lookup: one graph pass, shared per-page neighbour scoring.

        Terms resolving to the same page share one scored list (see
        :meth:`~repro.wikipedia.graph.WikipediaGraph.neighbours_many`),
        so the title projection also runs once per distinct list.
        """
        projected: dict[int, list[str]] = {}
        answers: list[list[str]] = []
        for neighbours in self._graph.neighbours_many(terms, k=self._top_k):
            titles = projected.get(id(neighbours))
            if titles is None:
                titles = projected[id(neighbours)] = [
                    n.title for n in neighbours
                ]
            answers.append(titles)
        return answers

    def cache_namespace(self) -> str:
        return f"WikipediaGraphResource(k={self._top_k})"
