"""Fault tolerance for remote resources.

The paper's deployment leans on two web services (Yahoo Term Extraction
and Google) that fail, rate-limit, and time out in practice.  This
module makes the pipeline robust to that:

* :class:`FlakyResource` — a fault-injection wrapper used by the test
  suite to simulate failures (each query raises with a configurable
  probability);
* :class:`ResilientResource` — a production wrapper that retries a
  failing resource a bounded number of times and degrades to an empty
  answer (logging nothing into the expansion) instead of aborting the
  whole extraction run;
* :class:`SimulatedLatencyResource` — a wrapper that sleeps per
  uncached query, modelling the remote round trip the paper measured
  (used by the efficiency benchmark to show worker-pool speedups).

All wrappers compose with the shared two-tier cache: they answer under
the *inner* resource's cache namespace (their answers are the inner
resource's answers), and :class:`ResilientResource` keeps degraded empty
answers out of the persistent tier so a transient outage can never
poison later runs.
"""

from __future__ import annotations

import random
import time

from ..errors import ResourceError
from ..observability.context import current_metrics
from ..observability.logging import get_logger
from .base import ExternalResource

log = get_logger(__name__)


class FlakyResource(ExternalResource):
    """Fault injection: delegate that fails with probability ``error_rate``."""

    def __init__(
        self,
        inner: ExternalResource,
        error_rate: float,
        seed: int = 0,
    ) -> None:
        if not 0 <= error_rate <= 1:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        super().__init__()
        self.name = inner.name
        self.remote = inner.remote
        self._inner = inner
        self._error_rate = error_rate
        self._rng = random.Random(seed)
        self.failures = 0

    def _query(self, term: str) -> list[str]:
        if self._rng.random() < self._error_rate:
            self.failures += 1
            metrics = current_metrics()
            if metrics is not None:
                metrics.increment(f"resource.{self.metric_label()}.failures")
            raise ResourceError(f"simulated outage answering {term!r}")
        return self._inner.context_terms(term)

    def cache_namespace(self) -> str:
        return self._inner.cache_namespace()


class ResilientResource(ExternalResource):
    """Retry-then-degrade wrapper around an unreliable resource.

    A query that keeps failing yields an empty context (that document
    simply gains no terms from this resource) — the pipeline finishes
    with slightly lower recall instead of crashing, which is the right
    trade for a batch expansion job.
    """

    def __init__(
        self,
        inner: ExternalResource,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        super().__init__()
        self.name = inner.name
        self.remote = inner.remote
        self._inner = inner
        self._max_attempts = max_attempts
        self.retries = 0
        self.gave_up = 0

    def _query(self, term: str) -> list[str]:
        metrics = current_metrics()
        last_error: Exception | None = None
        for attempt in range(self._max_attempts):
            try:
                return self._inner.context_terms(term)
            except ResourceError as exc:
                last_error = exc
                if attempt + 1 < self._max_attempts:
                    self.retries += 1
                    if metrics is not None:
                        metrics.increment(
                            f"resource.{self.metric_label()}.retries"
                        )
        self.gave_up += 1
        assert last_error is not None
        if metrics is not None:
            metrics.increment(f"resource.{self.metric_label()}.degraded")
        log.warning(
            "resource.degraded",
            resource=self.metric_label(),
            term=term,
            attempts=self._max_attempts,
            error=str(last_error),
        )
        # The empty answer is a degradation, not the resource's real
        # answer: keep it in the in-process tier only, never in the
        # persistent store, so a transient outage cannot poison later
        # runs that share the cache file.
        self._mark_do_not_persist()
        return []

    def cache_namespace(self) -> str:
        return self._inner.cache_namespace()


class SimulatedLatencyResource(ExternalResource):
    """Adds a fixed per-query sleep, modelling a remote round trip.

    Cache hits (either tier) skip the sleep — exactly the behaviour that
    makes the offline/warm-cache deployment of Section V-D attractive —
    and sleeping releases the GIL, so a thread-backed worker pool
    overlaps the simulated round trips of different documents.
    """

    def __init__(
        self,
        inner: ExternalResource,
        latency_seconds: float,
    ) -> None:
        if latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {latency_seconds}"
            )
        super().__init__()
        self.name = inner.name
        self.remote = True
        self._inner = inner
        self._latency_seconds = latency_seconds
        self.simulated_calls = 0

    def _query(self, term: str) -> list[str]:
        self.simulated_calls += 1
        metrics = current_metrics()
        if metrics is not None:
            metrics.increment(
                f"resource.{self.metric_label()}.simulated_round_trips"
            )
        time.sleep(self._latency_seconds)
        return self._inner.context_terms(term)

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk lookup: a whole batch costs **one** simulated round trip.

        This models a remote API with a batch endpoint (one HTTP request
        answering many terms) — the quantitative case for the batched
        query engine: per-term latency collapses from ``n * latency`` to
        ``ceil(n / batch) * latency``.
        """
        self.simulated_calls += 1
        metrics = current_metrics()
        if metrics is not None:
            metrics.increment(
                f"resource.{self.metric_label()}.simulated_round_trips"
            )
        time.sleep(self._latency_seconds)
        return self._inner.context_terms_many(terms)

    def cache_namespace(self) -> str:
        # Latency does not change answers; share the inner namespace so
        # a cache warmed through this wrapper serves the bare resource.
        return self._inner.cache_namespace()
