"""Fault tolerance for remote resources.

The paper's deployment leans on two web services (Yahoo Term Extraction
and Google) that fail, rate-limit, and time out in practice.  This
module makes the pipeline robust to that:

* :class:`FlakyResource` — a fault-injection wrapper used by the test
  suite to simulate failures (each query raises with a configurable
  probability);
* :class:`ResilientResource` — a production wrapper that retries a
  failing resource a bounded number of times and degrades to an empty
  answer (logging nothing into the expansion) instead of aborting the
  whole extraction run.
"""

from __future__ import annotations

import random

from ..errors import ResourceError
from .base import ExternalResource


class FlakyResource(ExternalResource):
    """Fault injection: delegate that fails with probability ``error_rate``."""

    def __init__(
        self,
        inner: ExternalResource,
        error_rate: float,
        seed: int = 0,
    ) -> None:
        if not 0 <= error_rate <= 1:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        super().__init__()
        self.name = inner.name
        self.remote = inner.remote
        self._inner = inner
        self._error_rate = error_rate
        self._rng = random.Random(seed)
        self.failures = 0

    def _query(self, term: str) -> list[str]:
        if self._rng.random() < self._error_rate:
            self.failures += 1
            raise ResourceError(f"simulated outage answering {term!r}")
        return self._inner.context_terms(term)


class ResilientResource(ExternalResource):
    """Retry-then-degrade wrapper around an unreliable resource.

    A query that keeps failing yields an empty context (that document
    simply gains no terms from this resource) — the pipeline finishes
    with slightly lower recall instead of crashing, which is the right
    trade for a batch expansion job.
    """

    def __init__(
        self,
        inner: ExternalResource,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        super().__init__()
        self.name = inner.name
        self.remote = inner.remote
        self._inner = inner
        self._max_attempts = max_attempts
        self.retries = 0
        self.gave_up = 0

    def _query(self, term: str) -> list[str]:
        last_error: Exception | None = None
        for attempt in range(self._max_attempts):
            try:
                return self._inner.context_terms(term)
            except ResourceError as exc:
                last_error = exc
                if attempt + 1 < self._max_attempts:
                    self.retries += 1
        self.gave_up += 1
        assert last_error is not None
        return []
