"""Wikipedia synonyms as a context resource."""

from __future__ import annotations

from ..text.interning import normalize_term
from ..wikipedia.synonyms import SynonymFinder
from .base import ExternalResource, ResourceName


class WikipediaSynonymsResource(ExternalResource):
    """Variations of the same term (redirects + scored anchors).

    Synonyms normalize surface variation — a story mentioning "Hillary
    R. Clinton" gains the canonical "Hillary Rodham Clinton" — but they
    are *not* generalizations, which is why this resource alone has the
    lowest recall in Tables II-IV while remaining fairly precise.
    """

    name = ResourceName.WIKI_SYNONYMS

    def __init__(self, finder: SynonymFinder) -> None:
        super().__init__()
        self._finder = finder

    def _query(self, term: str) -> list[str]:
        key = normalize_term(term)
        return [
            synonym.phrase
            for synonym in self._finder.synonyms(term)
            if normalize_term(synonym.phrase) != key
        ]

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk lookup: variants of one entry expand once per batch.

        Terms resolving to the same entry share one synonym group (see
        :meth:`~repro.wikipedia.synonyms.SynonymFinder.synonyms_many`),
        so each group's phrases are normalized once per batch and the
        per-term work is the self-exclusion filter alone.
        """
        normalized: dict[int, list[tuple[str, str]]] = {}
        answers: list[list[str]] = []
        for term, synonyms in zip(
            terms, self._finder.synonyms_many(terms), strict=True
        ):
            key = normalize_term(term)
            group = normalized.get(id(synonyms))
            if group is None:
                group = normalized[id(synonyms)] = [
                    (synonym.phrase, normalize_term(synonym.phrase))
                    for synonym in synonyms
                ]
            answers.append(
                [phrase for phrase, phrase_key in group if phrase_key != key]
            )
        return answers
