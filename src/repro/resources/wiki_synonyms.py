"""Wikipedia synonyms as a context resource."""

from __future__ import annotations

from ..text.tokenizer import normalize_term
from ..wikipedia.synonyms import SynonymFinder
from .base import ExternalResource, ResourceName


class WikipediaSynonymsResource(ExternalResource):
    """Variations of the same term (redirects + scored anchors).

    Synonyms normalize surface variation — a story mentioning "Hillary
    R. Clinton" gains the canonical "Hillary Rodham Clinton" — but they
    are *not* generalizations, which is why this resource alone has the
    lowest recall in Tables II-IV while remaining fairly precise.
    """

    name = ResourceName.WIKI_SYNONYMS

    def __init__(self, finder: SynonymFinder) -> None:
        super().__init__()
        self._finder = finder

    def _query(self, term: str) -> list[str]:
        key = normalize_term(term)
        return [
            synonym.phrase
            for synonym in self._finder.synonyms(term)
            if normalize_term(synonym.phrase) != key
        ]

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk lookup: variants of one entry expand once per batch."""
        answers: list[list[str]] = []
        for term, synonyms in zip(
            terms, self._finder.synonyms_many(terms), strict=True
        ):
            key = normalize_term(term)
            answers.append(
                [
                    synonym.phrase
                    for synonym in synonyms
                    if normalize_term(synonym.phrase) != key
                ]
            )
        return answers
