"""External context resources (Step 2 of the pipeline, Figure 2).

Each resource answers "given an important term, which context terms are
associated with it?"  The four resources of Section IV-B:

* :class:`GoogleResource` — frequent words/phrases in web snippets,
* :class:`WordNetHypernymResource` — hypernym chains (common nouns only),
* :class:`WikipediaGraphResource` — top-k linked entries scored by
  ``log(N / in(t2)) / out(t1)``,
* :class:`WikipediaSynonymsResource` — redirect groups and scored
  anchor-text variants,

plus :class:`CompositeResource` which unions several resources (the
"All" rows of Tables II-VII).
"""

from .base import CacheStats, ExternalResource, ResourceName
from .engine import ResourcePrefetcher, SingleFlight
from .google import GoogleResource
from .wordnet_hypernyms import WordNetHypernymResource
from .wiki_graph import WikipediaGraphResource
from .wiki_synonyms import WikipediaSynonymsResource
from .composite import CompositeResource
from .domain import (
    DomainGlossary,
    DomainTermExtractor,
    DomainVocabularyResource,
    financial_glossary,
)
from .registry import build_resource, build_resources
from .resilience import FlakyResource, ResilientResource, SimulatedLatencyResource

__all__ = [
    "CacheStats",
    "ExternalResource",
    "ResourceName",
    "ResourcePrefetcher",
    "SingleFlight",
    "GoogleResource",
    "WordNetHypernymResource",
    "WikipediaGraphResource",
    "WikipediaSynonymsResource",
    "CompositeResource",
    "DomainGlossary",
    "DomainTermExtractor",
    "DomainVocabularyResource",
    "financial_glossary",
    "build_resource",
    "build_resources",
    "FlakyResource",
    "ResilientResource",
    "SimulatedLatencyResource",
]
