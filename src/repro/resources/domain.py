"""Domain-specific vocabularies as resources (Section VII of the paper).

The paper's discussion: "the Taxonomy Warehouse by Dow Jones contains a
large list of controlled vocabularies and specialized taxonomies that
can be used for term identification and term expansion ... when browsing
literature for financial topics, we can use one of the available
glossaries to identify financial terms in the documents; then we can
expand the identified terms using one (or more) of the available
financial ontologies."

:class:`DomainGlossary` is such a controlled vocabulary: a set of domain
terms, each mapped to broader domain concepts.  It plays both roles the
paper describes:

* **term identification** — :class:`DomainTermExtractor` marks glossary
  terms appearing in a document as important;
* **term expansion** — :class:`DomainVocabularyResource` returns the
  broader concepts for a glossary term.

A small built-in financial glossary (:func:`financial_glossary`) matches
the paper's worked example; callers can load their own via
:meth:`DomainGlossary.from_entries`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.document import Document
from ..text.interning import normalize_term, tokenize
from .base import ExternalResource, ResourceName


@dataclass(frozen=True)
class GlossaryEntry:
    """One controlled-vocabulary entry."""

    term: str
    broader: tuple[str, ...] = ()
    synonyms: tuple[str, ...] = ()


class DomainGlossary:
    """A controlled vocabulary with broader-concept links."""

    def __init__(self, name: str, entries: list[GlossaryEntry]) -> None:
        if not name:
            raise ValueError("glossary name must be non-empty")
        self.name = name
        self._entries: dict[str, GlossaryEntry] = {}
        for entry in entries:
            for surface in (entry.term, *entry.synonyms):
                self._entries.setdefault(normalize_term(surface), entry)

    @classmethod
    def from_entries(
        cls, name: str, table: dict[str, list[str]]
    ) -> "DomainGlossary":
        """Build from a simple ``{term: [broader concepts]}`` mapping."""
        return cls(
            name,
            [GlossaryEntry(term=t, broader=tuple(b)) for t, b in table.items()],
        )

    def lookup(self, term: str) -> GlossaryEntry | None:
        """Entry for a surface form, or None."""
        return self._entries.get(normalize_term(term))

    def __contains__(self, term: str) -> bool:
        return normalize_term(term) in self._entries

    def __len__(self) -> int:
        return len({id(e) for e in self._entries.values()})

    def surfaces(self) -> tuple[str, ...]:
        return tuple(self._entries)


class DomainTermExtractor:
    """Marks glossary terms appearing in a document as important.

    Multi-word glossary terms are matched longest-first, mirroring the
    Wikipedia title extractor.
    """

    name = None  # not one of the paper's three named extractors

    def __init__(self, glossary: DomainGlossary, max_words: int = 4) -> None:
        self._glossary = glossary
        self._max_words = max_words

    def use_background(self, vocabulary) -> None:
        """Glossary matching needs no corpus statistics."""

    def extract(self, document: Document) -> list[str]:
        words = [t.text for t in tokenize(document.text)]
        found: list[str] = []
        seen: set[str] = set()
        i = 0
        while i < len(words):
            matched = False
            for n in range(min(self._max_words, len(words) - i), 0, -1):
                surface = " ".join(words[i : i + n])
                if surface in self._glossary:
                    key = normalize_term(surface)
                    if key not in seen:
                        seen.add(key)
                        found.append(surface)
                    i += n
                    matched = True
                    break
            if not matched:
                i += 1
        return found


class DomainVocabularyResource(ExternalResource):
    """Expansion through a domain ontology (broader concepts)."""

    name = ResourceName.WORDNET  # closest behavioural profile

    def __init__(self, glossary: DomainGlossary) -> None:
        super().__init__()
        self._glossary = glossary

    @property
    def glossary_name(self) -> str:
        return self._glossary.name

    def _query(self, term: str) -> list[str]:
        entry = self._glossary.lookup(term)
        if entry is None:
            return []
        return list(entry.broader)


def financial_glossary() -> DomainGlossary:
    """The paper's worked example: a small financial vocabulary."""
    return DomainGlossary.from_entries(
        "financial",
        {
            "mortgage": ["consumer credit", "real estate finance"],
            "dividend": ["shareholder returns", "equity markets"],
            "bond": ["fixed income", "debt markets"],
            "merger": ["corporate transactions", "business"],
            "acquisition": ["corporate transactions", "business"],
            "earnings": ["corporate performance", "equity markets"],
            "inflation": ["monetary policy", "macroeconomics"],
            "interest rates": ["monetary policy", "macroeconomics"],
            "hedge fund": ["asset management", "financial firms"],
            "due diligence": ["corporate transactions"],
            "initial public offering": ["equity markets", "capital raising"],
            "balance sheet": ["corporate performance", "accounting"],
            "stock market": ["equity markets", "financial markets"],
            "portfolio": ["asset management"],
            "bankruptcy": ["corporate distress", "business"],
        },
    )
