"""Union of several resources (the "All" rows of the paper's tables)."""

from __future__ import annotations

from ..text.interning import normalize_term
from .base import ExternalResource


class CompositeResource(ExternalResource):
    """Queries every member resource and unions the results."""

    def __init__(self, resources: list[ExternalResource]) -> None:
        super().__init__()
        if not resources:
            raise ValueError("CompositeResource needs at least one resource")
        self._resources = list(resources)
        self.name = resources[0].name  # placeholder; label() is canonical
        self.remote = any(resource.remote for resource in resources)

    def label(self) -> str:
        """Human-readable combination label."""
        return " + ".join(resource.name.value for resource in self._resources)

    @property
    def members(self) -> tuple[ExternalResource, ...]:
        return tuple(self._resources)

    def _query(self, term: str) -> list[str]:
        merged: list[str] = []
        seen: set[str] = set()
        for resource in self._resources:
            for context_term in resource.context_terms(term):
                key = normalize_term(context_term)
                if key and key not in seen:
                    seen.add(key)
                    merged.append(context_term)
        return merged

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk union: one batched pass per member resource.

        Each member answers the whole batch through its own engine
        (LRU, batched persistent reads, single-flight, bulk backend
        lookups); the per-term union preserves member order exactly as
        :meth:`_query` does.
        """
        member_answers = [
            resource.context_terms_many(terms) for resource in self._resources
        ]
        merged_all: list[list[str]] = []
        for index in range(len(terms)):
            merged: list[str] = []
            seen: set[str] = set()
            for answers in member_answers:
                for context_term in answers[index]:
                    key = normalize_term(context_term)
                    if key and key not in seen:
                        seen.add(key)
                        merged.append(context_term)
            merged_all.append(merged)
        return merged_all

    def cache_namespace(self) -> str:
        # The union depends on which members are combined (and on their
        # order); encode the member namespaces so different combinations
        # never share persistent entries.
        members = "+".join(r.cache_namespace() for r in self._resources)
        return f"CompositeResource({members})"

    def metric_label(self) -> str:
        # Members record under their own labels when the composite
        # queries them; the union itself records as "composite" so the
        # two never collide in the registry.
        return "composite"
