"""Factory helpers wiring resources to their substrates."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ReproConfig
from ..errors import ResourceError
from ..kb.world import World
from ..websim.engine import SearchEngineSim
from ..websim.pages import build_web_corpus
from ..wikipedia.builder import build_wikipedia
from ..wikipedia.database import WikipediaDatabase
from ..wikipedia.graph import WikipediaGraph
from ..wikipedia.synonyms import SynonymFinder
from ..wordnet.hypernyms import HypernymLookup
from ..wordnet.lexicon import build_lexicon
from .base import ExternalResource, ResourceName
from .composite import CompositeResource
from .google import GoogleResource
from .wiki_graph import WikipediaGraphResource
from .wiki_synonyms import WikipediaSynonymsResource
from .wordnet_hypernyms import WordNetHypernymResource


@dataclass
class ResourceSubstrates:
    """The shared backing stores the resources are built on."""

    wikipedia: WikipediaDatabase
    engine: SearchEngineSim
    lookup: HypernymLookup

    @classmethod
    def build(cls, world: World, config: ReproConfig) -> "ResourceSubstrates":
        return cls(
            wikipedia=build_wikipedia(world, config),
            engine=SearchEngineSim(build_web_corpus(world, config)),
            lookup=HypernymLookup(build_lexicon(world)),
        )


def build_resource(
    name: ResourceName | str,
    substrates: ResourceSubstrates,
    config: ReproConfig | None = None,
) -> ExternalResource:
    """Build one resource by name over shared substrates."""
    config = config or ReproConfig()
    if isinstance(name, str):
        try:
            name = ResourceName(name)
        except ValueError as exc:
            raise ResourceError(f"unknown resource: {name!r}") from exc
    if name is ResourceName.GOOGLE:
        return GoogleResource(substrates.engine)
    if name is ResourceName.WORDNET:
        return WordNetHypernymResource(substrates.lookup)
    if name is ResourceName.WIKI_GRAPH:
        return WikipediaGraphResource(
            WikipediaGraph(substrates.wikipedia), top_k=config.wiki_graph_top_k
        )
    if name is ResourceName.WIKI_SYNONYMS:
        return WikipediaSynonymsResource(SynonymFinder(substrates.wikipedia))
    raise ResourceError(f"unhandled resource: {name!r}")


def build_resources(
    names: list[ResourceName | str],
    substrates: ResourceSubstrates,
    config: ReproConfig | None = None,
) -> list[ExternalResource]:
    """Build several resources over shared substrates."""
    return [build_resource(name, substrates, config) for name in names]


def build_all_resources(
    substrates: ResourceSubstrates, config: ReproConfig | None = None
) -> CompositeResource:
    """The "All" combination: union of the four resources."""
    return CompositeResource(
        build_resources(list(ResourceName), substrates, config)
    )
