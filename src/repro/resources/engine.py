"""Batched query-engine primitives: single-flight coalescing + prefetch.

Instrumented runs showed contextualization dominating pipeline wall time
with hundreds of cache misses per resource even though most lookups
collapse to a much smaller set of distinct terms: concurrent workers
racing on the same fresh term each paid the full remote round trip, and
every term paid its own SQLite round trip.  This module provides the two
concurrency primitives the batched engine is built on:

* :class:`SingleFlight` — coalesces concurrent identical queries so that
  exactly one caller (the *leader*) performs the expensive work while
  every other caller (a *waiter*) blocks on the leader's result instead
  of re-issuing the query;
* :class:`ResourcePrefetcher` — a small background pool that starts
  resolving a chunk's important terms against the resources while later
  chunks are still in annotation, overlapping latency-bound expansion
  with CPU-bound tagging.  Prefetch only warms caches: the main path
  re-reads every answer through the normal tiers, so results are
  bit-for-bit identical with prefetch on or off.

Both primitives are deterministic by construction: a coalesced waiter
receives exactly the tuple the leader cached, and a failed leader wakes
its waiters empty-handed so one of them retries — the answer never
depends on which thread won the race.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from ..observability import MetricsRegistry
from ..observability.context import use_metrics
from ..observability.logging import get_logger

log = get_logger(__name__)

#: Background threads used by the prefetch stage (bounded: prefetch is a
#: best-effort warm-up, not a second worker pool).
DEFAULT_PREFETCH_WORKERS = 2


class Flight:
    """One in-flight query: an event plus the leader's eventual result.

    ``result`` stays None when the leader failed; waiters observing None
    after the event fires must retry the query themselves.

    The event is created lazily, under the :class:`SingleFlight` lock,
    when the first waiter arrives (see :meth:`SingleFlight.claim`): an
    uncontended flight — every flight of a single-worker run — never
    allocates one.  Reading :attr:`event` materializes it on demand,
    already set when the flight has completed, so the attribute behaves
    exactly as the eager version did.
    """

    __slots__ = ("_event", "_done", "result")

    def __init__(self) -> None:
        self._event: threading.Event | None = None
        self._done = False
        self.result: tuple[str, ...] | None = None

    def arm(self) -> threading.Event:
        """The flight's event, created on first use (set if completed).

        First-time arming must happen either under the owning
        :class:`SingleFlight` lock (the waiter path in ``claim``) or
        after the flight completed — concurrent unsynchronized first
        reads could otherwise each build their own event.
        """
        event = self._event
        if event is None:
            event = self._event = threading.Event()
            if self._done:
                event.set()
        return event

    @property
    def event(self) -> threading.Event:
        return self.arm()


class SingleFlight:
    """Per-key coalescing of concurrent identical queries.

    The first caller to :meth:`claim` a key becomes its leader and must
    later call :meth:`resolve` (success) or :meth:`abandon` (failure);
    callers that lose the claim receive the existing :class:`Flight` and
    wait on it.  Keys are removed on resolution, so a later query for
    the same key (e.g. after the leader failed) starts a fresh flight.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}

    def claim(self, key: str) -> tuple[Flight, bool]:
        """Return ``(flight, is_leader)`` for ``key``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                # First (and later) waiters arm the event while the
                # flight is still claimable; resolve/abandon pop under
                # this same lock, so a waiter that got the flight here
                # is always woken.
                flight.arm()
                return flight, False
            flight = Flight()
            self._flights[key] = flight
            return flight, True

    def resolve(self, key: str, flight: Flight, result: tuple[str, ...]) -> None:
        """Publish the leader's result and wake every waiter."""
        flight.result = result
        with self._lock:
            flight._done = True
            self._flights.pop(key, None)
            event = flight._event
        if event is not None:
            event.set()

    def abandon(self, key: str, flight: Flight) -> None:
        """Wake waiters empty-handed after a failed leader (they retry)."""
        with self._lock:
            flight._done = True
            self._flights.pop(key, None)
            event = flight._event
        if event is not None:
            event.set()

    @property
    def in_flight(self) -> int:
        """Number of queries currently being led (snapshot)."""
        with self._lock:
            return len(self._flights)


class ResourcePrefetcher:
    """Background warm-up of resource caches for upcoming work chunks.

    :meth:`submit` schedules one batched resolution of a term list
    against every resource; tasks run on a private thread pool with
    their own :class:`~repro.observability.MetricsRegistry` so worker
    telemetry stays deterministic — the registry is merged into the
    caller's exactly once, at :meth:`drain`.

    A prefetch task that raises is logged and counted but never fails
    the pipeline: the main expansion path re-issues the same query and
    surfaces the error deterministically there.
    """

    def __init__(
        self,
        prefetch: Callable[[Sequence[str]], None],
        workers: int = DEFAULT_PREFETCH_WORKERS,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._prefetch = prefetch
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-prefetch"
        )
        self._futures: list[Future[None]] = []
        self._lock = threading.Lock()
        self._registry = MetricsRegistry()
        self.batches_submitted = 0
        self.terms_submitted = 0
        self.errors = 0

    def submit(self, terms: Sequence[str]) -> None:
        """Schedule a warm-up batch; a no-op after :meth:`drain`."""
        if not terms:
            return
        with self._lock:
            if self._pool is None:
                return
            self.batches_submitted += 1
            self.terms_submitted += len(terms)
            self._futures.append(self._pool.submit(self._run, list(terms)))

    def _run(self, terms: list[str]) -> None:
        with use_metrics(self._registry), self._registry.time(
            "prefetch.task_seconds"
        ):
            try:
                self._prefetch(terms)
            except Exception as exc:
                # Degrade explicitly: the warm-up is advisory — the main
                # expansion path repeats the query and raises there if
                # the failure is real.
                with self._lock:
                    self.errors += 1
                self._registry.increment("prefetch.errors")
                log.warning(
                    "prefetch.failed", terms=len(terms), error=str(exc)
                )

    def drain(self, into: MetricsRegistry | None = None) -> None:
        """Wait for outstanding tasks, stop the pool, merge telemetry.

        Safe to call more than once; the metrics merge happens on the
        first call only, so aggregate values are deterministic.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            futures, self._futures = self._futures, []
        if pool is None:
            return
        for future in futures:
            # Task errors were already converted to log+counter in _run;
            # result() here only synchronizes.
            future.result()
        pool.shutdown(wait=True)
        self._registry.increment("prefetch.batches", self.batches_submitted)
        self._registry.increment("prefetch.terms", self.terms_submitted)
        if into is not None:
            into.merge(self._registry)
