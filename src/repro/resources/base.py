"""Resource interface with two-tier per-term memoization.

The same important terms recur across thousands of documents, so every
resource caches query results — this is also what makes the paper's
"perform term and context extraction offline" deployment mode natural
(Section V-D).

Caching is two-tier:

* an **in-process LRU** (bounded, thread-safe) answers the hot repeats
  within a run;
* an optional **persistent SQLite store**
  (:class:`~repro.db.resource_cache.PersistentResourceCache`, attached
  via :meth:`ExternalResource.attach_cache`) is shared across worker
  threads/processes and across runs, so a warm cache file makes remote
  expansion essentially free.

Cached entries are stored as **immutable tuples** and every call returns
a fresh list, so no caller can poison the cache by mutating an answer —
neither the list it received nor the list ``_query`` originally returned.

On a miss both the single-term and the batched path go through the
**batched query engine**:

* concurrent workers asking for the same fresh ``(namespace, term)``
  are **single-flight coalesced** — exactly one performs the query,
  the rest wait for its cached answer instead of re-paying the round
  trip (see :class:`~repro.resources.engine.SingleFlight`);
* :meth:`ExternalResource.context_terms_many` answers a whole term
  batch at once: one lock pass over the LRU, one batched
  :meth:`~repro.db.resource_cache.PersistentResourceCache.get_many`,
  one bulk :meth:`ExternalResource.query_many` for the remaining
  leaders, and one
  :meth:`~repro.db.resource_cache.PersistentResourceCache.put_many`
  write-back.  ``query_many`` defaults to looping :meth:`_query`;
  resources with a natural bulk lookup override it.
"""

from __future__ import annotations

import abc
import enum
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence

from ..db.resource_cache import PersistentResourceCache
from ..errors import ResourceError
from ..observability import names as obs_names
from ..observability.context import current_metrics, current_span, use_span
from ..observability.stats import ResourceStats
from ..observability.tracing import Span
from ..text.interning import normalize_term
from .engine import Flight, SingleFlight

#: Default bound of the in-process LRU tier.
DEFAULT_MEMORY_CACHE_SIZE = 65_536

#: Histogram bounds for batch sizes (terms per bulk query).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
)


def validate_context_terms(raw: "list[str] | tuple[str, ...]") -> tuple[str, ...]:
    """Normalize a raw resource response into a cache-safe value.

    Resource ``_query`` implementations return whatever the backing
    corpus/graph produced; before such a response is written to either
    cache tier it must be reduced to an immutable tuple of non-empty,
    whitespace-trimmed strings — a poisoned entry would be served to
    every later reader of that term, across workers and (for the
    persistent tier) across runs.  This is the sanitizer the FLOW001
    lint rule requires on every path from ``_query`` to a cache write.
    """
    cleaned: list[str] = []
    for item in raw:
        if not isinstance(item, str):
            continue
        stripped = item.strip()
        if stripped:
            cleaned.append(stripped)
    return tuple(cleaned)

#: Backwards-compatible alias: the counter snapshot type moved to
#: :mod:`repro.observability.stats` as :class:`ResourceStats`.
CacheStats = ResourceStats


class ResourceName(enum.Enum):
    """The four resources of Section IV-B (table row headers)."""

    GOOGLE = "Google"
    WORDNET = "WordNet Hypernyms"
    WIKI_SYNONYMS = "Wikipedia Synonyms"
    WIKI_GRAPH = "Wikipedia Graph"


class ExternalResource(abc.ABC):
    """Maps an important term to its context terms ``R_i(t)``."""

    #: Which paper resource this implements.
    name: ResourceName

    #: True when answering requires a (simulated) network round trip.
    remote: bool = False

    def __init__(self, memory_cache_size: int = DEFAULT_MEMORY_CACHE_SIZE) -> None:
        if memory_cache_size < 1:
            raise ValueError(
                f"memory_cache_size must be >= 1, got {memory_cache_size}"
            )
        self._cache: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        self._memory_cache_size = memory_cache_size
        self._lock = threading.Lock()
        self._persistent: PersistentResourceCache | None = None
        self._namespace: str | None = None
        self._memory_hits = 0
        self._persistent_hits = 0
        self._misses = 0
        self._coalesced_hits = 0
        self._coalesce_wait_seconds = 0.0
        self._batch_queries = 0
        self._no_persist = threading.local()
        self._single_flight = SingleFlight()

    # -- the public query path ---------------------------------------------------

    def context_terms(self, term: str) -> list[str]:
        """Context terms for ``term`` (cached on the normalized form)."""
        key = normalize_term(term)
        if not key:
            return []
        metrics = current_metrics()
        while True:
            cached = self._lookup_tiers(key, metrics)
            if cached is not None:
                return list(cached)
            # Miss on both tiers: claim the key.  The leader answers the
            # query outside the lock (remote queries are slow); everyone
            # else waits for the leader's cached answer instead of
            # re-paying the round trip.
            flight, leader = self._single_flight.claim(key)
            if not leader:
                waited = self._wait_for_flight(flight, metrics)
                if waited is not None:
                    return list(waited)
                continue  # the leader failed; retry (possibly as leader)
            try:
                result = validate_context_terms(
                    self._instrumented_query(term, key, metrics)
                )
                persist = not self._consume_no_persist()
                with self._lock:
                    self._misses += 1
                    self._memory_put(key, result)
                if (
                    persist
                    and self._persistent is not None
                    and self._namespace is not None
                ):
                    self._persistent.put(self._namespace, key, result)
            except BaseException:
                self._single_flight.abandon(key, flight)
                raise
            self._single_flight.resolve(key, flight, result)
            return list(result)

    def context_terms_many(self, terms: Sequence[str]) -> list[list[str]]:
        """Context terms for a term batch, aligned with the input order.

        The batch is deduplicated on normalized form (the first surface
        form seen for a key is the one queried, matching the single-term
        path) and resolved in one engine pass per tier: one lock
        acquisition over the LRU, one batched persistent read, one bulk
        :meth:`query_many` for the keys this caller leads, one batched
        persistent write-back.  Keys led by another thread are waited on
        (coalesced), never re-queried.
        """
        metrics = current_metrics()
        keys = [normalize_term(term) for term in terms]
        surface: dict[str, str] = {}
        for term, key in zip(terms, keys, strict=True):
            if key and key not in surface:
                surface[key] = term
        resolved: dict[str, tuple[str, ...]] = {}
        pending = list(surface)
        while pending:
            pending = self._resolve_batch(pending, surface, resolved, metrics)
        return [list(resolved[key]) if key else [] for key in keys]

    def _resolve_batch(
        self,
        keys: list[str],
        surface: dict[str, str],
        resolved: dict[str, tuple[str, ...]],
        metrics,
    ) -> list[str]:
        """One engine pass over ``keys``; returns keys that must retry
        (their leader failed after we started waiting on it)."""
        label = self.metric_label()
        missing: list[str] = []
        with self._lock:
            for key in keys:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._memory_hits += 1
                    resolved[key] = cached
                else:
                    missing.append(key)
        if metrics is not None and len(missing) != len(keys):
            metrics.increment(
                obs_names.resource_metric(label, "memory_hits"), len(keys) - len(missing)
            )
        if not missing:
            return []
        if self._persistent is not None and self._namespace is not None:
            stored = self._persistent.get_many(self._namespace, missing)
            if stored:
                with self._lock:
                    for key, value in stored.items():
                        self._persistent_hits += 1
                        self._memory_put(key, value)
                resolved.update(stored)
                if metrics is not None:
                    metrics.increment(
                        obs_names.resource_metric(label, "persistent_hits"), len(stored)
                    )
                missing = [key for key in missing if key not in stored]
        if not missing:
            return []
        leaders: list[str] = []
        claimed: dict[str, Flight] = {}
        waiting: list[tuple[str, Flight]] = []
        for key in missing:
            flight, leader = self._single_flight.claim(key)
            if leader:
                leaders.append(key)
                claimed[key] = flight
            else:
                waiting.append((key, flight))
        if leaders:
            try:
                answers, no_persist = self._run_batch_query(
                    [surface[key] for key in leaders], metrics
                )
                # Bulk resources alias one answer list across terms that
                # resolve to the same entry; validate each distinct list
                # once (`answers` keeps every list alive, so ids are
                # stable for the duration of the loop).
                validated_by_id: dict[int, tuple[str, ...]] = {}
                validated: list[tuple[str, ...]] = []
                for raw in answers:
                    value = validated_by_id.get(id(raw))
                    if value is None:
                        value = validated_by_id[id(raw)] = validate_context_terms(raw)
                    validated.append(value)
                persistable: dict[str, tuple[str, ...]] = {}
                with self._lock:
                    for key, value, skip in zip(
                        leaders, validated, no_persist, strict=True
                    ):
                        self._misses += 1
                        self._memory_put(key, value)
                        if not skip:
                            persistable[key] = value
                if metrics is not None:
                    metrics.increment(obs_names.resource_metric(label, "misses"), len(leaders))
                if (
                    persistable
                    and self._persistent is not None
                    and self._namespace is not None
                ):
                    self._persistent.put_many(self._namespace, persistable)
            except BaseException:
                for key in leaders:
                    self._single_flight.abandon(key, claimed[key])
                raise
            for key, value in zip(leaders, validated, strict=True):
                resolved[key] = value
                self._single_flight.resolve(key, claimed[key], value)
        retry: list[str] = []
        for key, flight in waiting:
            value = self._wait_for_flight(flight, metrics)
            if value is None:
                retry.append(key)
            else:
                resolved[key] = value
        return retry

    def _lookup_tiers(self, key: str, metrics) -> tuple[str, ...] | None:
        """Answer from the LRU or persistent tier, or None on a miss."""
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._memory_hits += 1
                if metrics is not None:
                    metrics.increment(obs_names.resource_metric(self.metric_label(), "memory_hits"))
                return cached
        if self._persistent is not None and self._namespace is not None:
            stored = self._persistent.get(self._namespace, key)
            if stored is not None:
                with self._lock:
                    self._persistent_hits += 1
                    self._memory_put(key, stored)
                if metrics is not None:
                    metrics.increment(
                        obs_names.resource_metric(self.metric_label(), "persistent_hits")
                    )
                return stored
        return None

    def _wait_for_flight(self, flight: Flight, metrics) -> tuple[str, ...] | None:
        """Block on another thread's in-flight query.

        Returns the leader's answer, or None when the leader failed —
        the caller retries (and may become the new leader).  Wait time
        and coalesce hits are counted so the engine's win is visible in
        ``ResourceStats`` and the metrics registry.
        """
        start = time.perf_counter()
        flight.event.wait()
        waited = time.perf_counter() - start
        result = flight.result
        with self._lock:
            self._coalesce_wait_seconds += waited
            if result is not None:
                self._coalesced_hits += 1
        if metrics is not None:
            label = self.metric_label()
            metrics.record_time(obs_names.resource_metric(label, "coalesce_wait_seconds"), waited)
            if result is not None:
                metrics.increment(obs_names.resource_metric(label, "coalesced_hits"))
            else:
                metrics.increment(obs_names.resource_metric(label, "coalesce_retries"))
        return result

    def _run_batch_query(
        self, surfaces: list[str], metrics
    ) -> tuple[list[list[str]], list[bool]]:
        """Answer a batch of uncached queries, instrumented as one unit.

        Returns the raw answers plus a per-term do-not-persist flag
        (wrappers mark individual degraded answers via
        :meth:`_mark_do_not_persist`).  Uses :meth:`query_many` when the
        subclass overrides it (a true bulk lookup), else loops
        :meth:`_query` so per-term wrapper semantics are preserved.
        """
        label = self.metric_label()
        parent = current_span()
        span: Span | None = None
        if parent is not None:
            span = Span.begin(obs_names.resource_batch_span(label), terms=len(surfaces))
        overridden = type(self).query_many is not ExternalResource.query_many
        start = time.perf_counter()
        try:
            with use_span(span):
                if overridden:
                    answers = self.query_many(list(surfaces))
                    flagged = self._consume_no_persist()
                    no_persist = [flagged] * len(surfaces)
                else:
                    answers = []
                    no_persist = []
                    for surface_term in surfaces:
                        answers.append(self._query(surface_term))
                        no_persist.append(self._consume_no_persist())
        except BaseException:
            if span is not None:
                span.finish(status="error")
                parent.children.append(span)
            if metrics is not None:
                metrics.increment(obs_names.resource_metric(label, "errors"))
            raise
        elapsed = time.perf_counter() - start
        if len(answers) != len(surfaces):
            raise ResourceError(
                f"{type(self).__name__}.query_many returned {len(answers)} "
                f"answers for {len(surfaces)} terms"
            )
        if span is not None:
            span.finish()
            span.counters["terms"] = float(len(surfaces))
            parent.children.append(span)
        with self._lock:
            self._batch_queries += 1
        if metrics is not None:
            metrics.increment(obs_names.resource_metric(label, "batch_queries"))
            metrics.record_time(obs_names.resource_metric(label, "batch_query_seconds"), elapsed)
            metrics.observe(
                obs_names.resource_metric(label, "batch_size"),
                float(len(surfaces)),
                buckets=BATCH_SIZE_BUCKETS,
            )
        return answers, no_persist

    def _instrumented_query(self, term: str, key: str, metrics) -> list[str]:
        """Answer an uncached query, recording latency and a call span.

        The expensive path — an actual resource call — gets a span of
        its own (nested under the active chunk/stage span) plus a miss
        counter, a latency timer, and a latency histogram; with
        observability disabled this is one extra ``None`` check.
        """
        parent = current_span()
        if metrics is None and parent is None:
            return self._query(term)
        label = self.metric_label()
        span: Span | None = None
        if parent is not None:
            span = Span.begin(obs_names.resource_span(label), term=key)
        start = time.perf_counter()
        try:
            with use_span(span):
                result = self._query(term)
        except BaseException:
            if span is not None:
                span.finish(status="error")
                parent.children.append(span)
            if metrics is not None:
                metrics.increment(obs_names.resource_metric(label, "errors"))
            raise
        elapsed = time.perf_counter() - start
        if span is not None:
            span.finish()
            span.counters["terms"] = float(len(result))
            parent.children.append(span)
        if metrics is not None:
            metrics.increment(obs_names.resource_metric(label, "misses"))
            metrics.record_time(obs_names.resource_metric(label, "query_seconds"), elapsed)
            metrics.observe(obs_names.resource_metric(label, "query_latency"), elapsed)
        return result

    def metric_label(self) -> str:
        """Short stable label used in metric names and call spans."""
        return self.name.value.lower().replace(" ", "_")

    @abc.abstractmethod
    def _query(self, term: str) -> list[str]:
        """Answer one uncached query."""

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Answer a batch of uncached queries, aligned with the input.

        The default loops :meth:`_query`; subclasses whose backend has a
        natural bulk lookup (the Wikipedia graph/synonym substrates,
        WordNet, or a remote API with a batch endpoint) override this so
        a whole chunk's terms cost one backend pass instead of one round
        trip each.  Implementations must return exactly one answer list
        per input term, in order.
        """
        return [self._query(term) for term in terms]

    # -- memory tier -------------------------------------------------------------

    def _memory_put(self, key: str, value: tuple[str, ...]) -> None:
        """Insert into the LRU tier (caller holds the lock)."""
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._memory_cache_size:
            self._cache.popitem(last=False)

    def resize_memory_cache(self, memory_cache_size: int) -> None:
        """Resize the LRU tier, evicting oldest entries when shrinking.

        How ``ParallelConfig.memory_cache_size`` reaches resources the
        builder constructed before the parallel settings were known.
        """
        if memory_cache_size < 1:
            raise ValueError(
                f"memory_cache_size must be >= 1, got {memory_cache_size}"
            )
        with self._lock:
            self._memory_cache_size = memory_cache_size
            while len(self._cache) > memory_cache_size:
                self._cache.popitem(last=False)

    # -- persistent tier ---------------------------------------------------------

    def attach_cache(
        self,
        store: PersistentResourceCache,
        namespace: str | None = None,
    ) -> None:
        """Put a persistent store behind the in-process tier.

        ``namespace`` defaults to :meth:`cache_namespace`; pass an
        augmented namespace (e.g. including the world seed/scale) when
        one cache file is shared by differently-configured runs.
        """
        self._persistent = store
        self._namespace = namespace or self.cache_namespace()

    def detach_cache(self) -> None:
        """Drop the persistent tier (the memory tier is kept)."""
        self._persistent = None
        self._namespace = None

    def cache_namespace(self) -> str:
        """Default persistent-cache namespace for this resource.

        Subclasses whose answers depend on configuration (result counts,
        top-k, wrapped members) extend this so entries written under one
        configuration are never served to another.
        """
        return type(self).__name__

    @property
    def persistent_cache(self) -> PersistentResourceCache | None:
        return self._persistent

    def _mark_do_not_persist(self) -> None:
        """Called by ``_query`` to keep its current answer out of the
        persistent tier (e.g. a degraded empty answer after retries)."""
        self._no_persist.flag = True

    def _consume_no_persist(self) -> bool:
        flagged = getattr(self._no_persist, "flag", False)
        self._no_persist.flag = False
        return flagged

    # -- introspection -----------------------------------------------------------

    @property
    def cache_size(self) -> int:
        """Number of memoized terms in the in-process tier."""
        with self._lock:
            return len(self._cache)

    @property
    def cache_stats(self) -> CacheStats:
        """Exact hit/miss counters (snapshot)."""
        with self._lock:
            return CacheStats(
                memory_hits=self._memory_hits,
                persistent_hits=self._persistent_hits,
                misses=self._misses,
                coalesced_hits=self._coalesced_hits,
                coalesce_wait_seconds=self._coalesce_wait_seconds,
                batch_queries=self._batch_queries,
            )

    def reset_cache_stats(self) -> None:
        with self._lock:
            self._memory_hits = 0
            self._persistent_hits = 0
            self._misses = 0
            self._coalesced_hits = 0
            self._coalesce_wait_seconds = 0.0
            self._batch_queries = 0

    def clear_cache(self) -> None:
        """Drop all memoized results — both tiers.

        The persistent tier is cleared only for this resource's
        namespace; other resources sharing the store are untouched.
        """
        with self._lock:
            self._cache.clear()
        if self._persistent is not None and self._namespace is not None:
            self._persistent.clear(self._namespace)

    # -- pickling (process-backed worker pools) ----------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_no_persist"] = None
        state["_single_flight"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._no_persist = threading.local()
        self._single_flight = SingleFlight()
