"""Resource interface with per-term memoization.

The same important terms recur across thousands of documents, so every
resource caches query results — this is also what makes the paper's
"perform term and context extraction offline" deployment mode natural
(Section V-D).
"""

from __future__ import annotations

import abc
import enum

from ..text.tokenizer import normalize_term


class ResourceName(enum.Enum):
    """The four resources of Section IV-B (table row headers)."""

    GOOGLE = "Google"
    WORDNET = "WordNet Hypernyms"
    WIKI_SYNONYMS = "Wikipedia Synonyms"
    WIKI_GRAPH = "Wikipedia Graph"


class ExternalResource(abc.ABC):
    """Maps an important term to its context terms ``R_i(t)``."""

    #: Which paper resource this implements.
    name: ResourceName

    #: True when answering requires a (simulated) network round trip.
    remote: bool = False

    def __init__(self) -> None:
        self._cache: dict[str, list[str]] = {}

    def context_terms(self, term: str) -> list[str]:
        """Context terms for ``term`` (cached on the normalized form)."""
        key = normalize_term(term)
        if not key:
            return []
        cached = self._cache.get(key)
        if cached is None:
            cached = self._query(term)
            self._cache[key] = cached
        return list(cached)

    @abc.abstractmethod
    def _query(self, term: str) -> list[str]:
        """Answer one uncached query."""

    @property
    def cache_size(self) -> int:
        """Number of memoized terms."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoized results."""
        self._cache.clear()
