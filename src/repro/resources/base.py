"""Resource interface with two-tier per-term memoization.

The same important terms recur across thousands of documents, so every
resource caches query results — this is also what makes the paper's
"perform term and context extraction offline" deployment mode natural
(Section V-D).

Caching is two-tier:

* an **in-process LRU** (bounded, thread-safe) answers the hot repeats
  within a run;
* an optional **persistent SQLite store**
  (:class:`~repro.db.resource_cache.PersistentResourceCache`, attached
  via :meth:`ExternalResource.attach_cache`) is shared across worker
  threads/processes and across runs, so a warm cache file makes remote
  expansion essentially free.

Cached entries are stored as **immutable tuples** and every call returns
a fresh list, so no caller can poison the cache by mutating an answer —
neither the list it received nor the list ``_query`` originally returned.
"""

from __future__ import annotations

import abc
import enum
import threading
import time
from collections import OrderedDict

from ..db.resource_cache import PersistentResourceCache
from ..observability.context import current_metrics, current_span, use_span
from ..observability.stats import ResourceStats
from ..observability.tracing import Span
from ..text.tokenizer import normalize_term

#: Default bound of the in-process LRU tier.
DEFAULT_MEMORY_CACHE_SIZE = 65_536


def validate_context_terms(raw: "list[str] | tuple[str, ...]") -> tuple[str, ...]:
    """Normalize a raw resource response into a cache-safe value.

    Resource ``_query`` implementations return whatever the backing
    corpus/graph produced; before such a response is written to either
    cache tier it must be reduced to an immutable tuple of non-empty,
    whitespace-trimmed strings — a poisoned entry would be served to
    every later reader of that term, across workers and (for the
    persistent tier) across runs.  This is the sanitizer the FLOW001
    lint rule requires on every path from ``_query`` to a cache write.
    """
    cleaned: list[str] = []
    for item in raw:
        if not isinstance(item, str):
            continue
        stripped = item.strip()
        if stripped:
            cleaned.append(stripped)
    return tuple(cleaned)

#: Backwards-compatible alias: the counter snapshot type moved to
#: :mod:`repro.observability.stats` as :class:`ResourceStats`.
CacheStats = ResourceStats


class ResourceName(enum.Enum):
    """The four resources of Section IV-B (table row headers)."""

    GOOGLE = "Google"
    WORDNET = "WordNet Hypernyms"
    WIKI_SYNONYMS = "Wikipedia Synonyms"
    WIKI_GRAPH = "Wikipedia Graph"


class ExternalResource(abc.ABC):
    """Maps an important term to its context terms ``R_i(t)``."""

    #: Which paper resource this implements.
    name: ResourceName

    #: True when answering requires a (simulated) network round trip.
    remote: bool = False

    def __init__(self, memory_cache_size: int = DEFAULT_MEMORY_CACHE_SIZE) -> None:
        if memory_cache_size < 1:
            raise ValueError(
                f"memory_cache_size must be >= 1, got {memory_cache_size}"
            )
        self._cache: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        self._memory_cache_size = memory_cache_size
        self._lock = threading.Lock()
        self._persistent: PersistentResourceCache | None = None
        self._namespace: str | None = None
        self._memory_hits = 0
        self._persistent_hits = 0
        self._misses = 0
        self._no_persist = threading.local()

    # -- the public query path ---------------------------------------------------

    def context_terms(self, term: str) -> list[str]:
        """Context terms for ``term`` (cached on the normalized form)."""
        key = normalize_term(term)
        if not key:
            return []
        metrics = current_metrics()
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._memory_hits += 1
                if metrics is not None:
                    metrics.increment(f"resource.{self.metric_label()}.memory_hits")
                return list(cached)
        if self._persistent is not None and self._namespace is not None:
            stored = self._persistent.get(self._namespace, key)
            if stored is not None:
                with self._lock:
                    self._persistent_hits += 1
                    self._memory_put(key, stored)
                if metrics is not None:
                    metrics.increment(
                        f"resource.{self.metric_label()}.persistent_hits"
                    )
                return list(stored)
        # Miss on both tiers: answer the query outside the lock (remote
        # queries are slow; two workers racing on the same fresh term
        # both query, which is wasteful but deterministic — last write
        # wins with an identical answer).
        result = validate_context_terms(self._instrumented_query(term, key, metrics))
        persist = not self._consume_no_persist()
        with self._lock:
            self._misses += 1
            self._memory_put(key, result)
        if persist and self._persistent is not None and self._namespace is not None:
            self._persistent.put(self._namespace, key, result)
        return list(result)

    def _instrumented_query(self, term: str, key: str, metrics) -> list[str]:
        """Answer an uncached query, recording latency and a call span.

        The expensive path — an actual resource call — gets a span of
        its own (nested under the active chunk/stage span) plus a miss
        counter, a latency timer, and a latency histogram; with
        observability disabled this is one extra ``None`` check.
        """
        parent = current_span()
        if metrics is None and parent is None:
            return self._query(term)
        label = self.metric_label()
        span: Span | None = None
        if parent is not None:
            span = Span.begin(f"resource:{label}", term=key)
        start = time.perf_counter()
        try:
            with use_span(span):
                result = self._query(term)
        except BaseException:
            if span is not None:
                span.finish(status="error")
                parent.children.append(span)
            if metrics is not None:
                metrics.increment(f"resource.{label}.errors")
            raise
        elapsed = time.perf_counter() - start
        if span is not None:
            span.finish()
            span.counters["terms"] = float(len(result))
            parent.children.append(span)
        if metrics is not None:
            metrics.increment(f"resource.{label}.misses")
            metrics.record_time(f"resource.{label}.query_seconds", elapsed)
            metrics.observe(f"resource.{label}.query_latency", elapsed)
        return result

    def metric_label(self) -> str:
        """Short stable label used in metric names and call spans."""
        return self.name.value.lower().replace(" ", "_")

    @abc.abstractmethod
    def _query(self, term: str) -> list[str]:
        """Answer one uncached query."""

    # -- memory tier -------------------------------------------------------------

    def _memory_put(self, key: str, value: tuple[str, ...]) -> None:
        """Insert into the LRU tier (caller holds the lock)."""
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._memory_cache_size:
            self._cache.popitem(last=False)

    # -- persistent tier ---------------------------------------------------------

    def attach_cache(
        self,
        store: PersistentResourceCache,
        namespace: str | None = None,
    ) -> None:
        """Put a persistent store behind the in-process tier.

        ``namespace`` defaults to :meth:`cache_namespace`; pass an
        augmented namespace (e.g. including the world seed/scale) when
        one cache file is shared by differently-configured runs.
        """
        self._persistent = store
        self._namespace = namespace or self.cache_namespace()

    def detach_cache(self) -> None:
        """Drop the persistent tier (the memory tier is kept)."""
        self._persistent = None
        self._namespace = None

    def cache_namespace(self) -> str:
        """Default persistent-cache namespace for this resource.

        Subclasses whose answers depend on configuration (result counts,
        top-k, wrapped members) extend this so entries written under one
        configuration are never served to another.
        """
        return type(self).__name__

    @property
    def persistent_cache(self) -> PersistentResourceCache | None:
        return self._persistent

    def _mark_do_not_persist(self) -> None:
        """Called by ``_query`` to keep its current answer out of the
        persistent tier (e.g. a degraded empty answer after retries)."""
        self._no_persist.flag = True

    def _consume_no_persist(self) -> bool:
        flagged = getattr(self._no_persist, "flag", False)
        self._no_persist.flag = False
        return flagged

    # -- introspection -----------------------------------------------------------

    @property
    def cache_size(self) -> int:
        """Number of memoized terms in the in-process tier."""
        with self._lock:
            return len(self._cache)

    @property
    def cache_stats(self) -> CacheStats:
        """Exact hit/miss counters (snapshot)."""
        with self._lock:
            return CacheStats(
                memory_hits=self._memory_hits,
                persistent_hits=self._persistent_hits,
                misses=self._misses,
            )

    def reset_cache_stats(self) -> None:
        with self._lock:
            self._memory_hits = 0
            self._persistent_hits = 0
            self._misses = 0

    def clear_cache(self) -> None:
        """Drop all memoized results — both tiers.

        The persistent tier is cleared only for this resource's
        namespace; other resources sharing the store are untouched.
        """
        with self._lock:
            self._cache.clear()
        if self._persistent is not None and self._namespace is not None:
            self._persistent.clear(self._namespace)

    # -- pickling (process-backed worker pools) ----------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_no_persist"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._no_persist = threading.local()
