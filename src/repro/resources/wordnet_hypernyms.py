"""WordNet hypernyms as a context resource."""

from __future__ import annotations

from ..wordnet.hypernyms import HypernymLookup
from .base import ExternalResource, ResourceName


class WordNetHypernymResource(ExternalResource):
    """Hypernym chains of a term.

    High precision ("hypernyms naturally form a hierarchy") but low
    recall on named entities and noun phrases, which the lexicon does
    not cover — exactly the profile the paper reports.
    """

    name = ResourceName.WORDNET

    def __init__(self, lookup: HypernymLookup, max_depth: int | None = None) -> None:
        super().__init__()
        self._lookup = lookup
        self._max_depth = max_depth

    def _query(self, term: str) -> list[str]:
        return self._lookup.hypernyms(term, max_depth=self._max_depth)

    def query_many(self, terms: list[str]) -> list[list[str]]:
        """Bulk lookup: hypernym chains are climbed once per batch."""
        return self._lookup.hypernyms_many(terms, max_depth=self._max_depth)
