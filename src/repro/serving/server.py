"""Minimal asyncio HTTP/1.1 server hosting the ASGI application.

The standard library ships no ASGI server, so this module provides the
thin bridge the ``repro serve`` command runs: an ``asyncio.start_server``
loop that parses one GET/HEAD request at a time per connection, builds
an ASGI ``http`` scope, and streams the application's response back.
It supports keep-alive, concurrent connections, and port ``0`` (bind to
a free port) — and nothing more; production deployments should mount
:class:`~repro.serving.app.FacetApp` on a real ASGI server instead.

:func:`run_in_thread` runs a server on a daemon event-loop thread and
yields the bound address — the harness used by the in-repo load bench
and the socket-level tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections.abc import Iterator
from urllib.parse import unquote_to_bytes

from ..errors import ReproError
from ..observability.logging import get_logger

log = get_logger(__name__)

_MAX_HEADER_BYTES = 64 * 1024
_HEADER_TIMEOUT = 10.0


class ServerError(ReproError):
    """HTTP bridge failures (bad bind, malformed request framing)."""


class FacetServer:
    """Serve an ASGI app over HTTP/1.1 on an asyncio event loop."""

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self._app = app
        self._requested_host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; only valid after :meth:`start`."""
        if self._server is None:
            raise ServerError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listening socket (port 0 picks a free port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )
        host, port = self.address
        log.info("serving.listening", host=host, port=port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connections; swallowing the
            # cancellation here lets the task finish cleanly (the stdlib
            # streams callback re-raises from task.exception() otherwise).
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns True to keep the connection open."""
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=_HEADER_TIMEOUT
        )
        if len(header_blob) > _MAX_HEADER_BYTES:
            writer.write(b"HTTP/1.1 431 Request Header Fields Too Large\r\n\r\n")
            await writer.drain()
            return False
        try:
            scope, headers, http_version = self._parse_request(header_blob)
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            await writer.drain()
            return False

        body_length = int(headers.get(b"content-length", b"0"))
        if body_length:
            await reader.readexactly(body_length)

        connection = headers.get(b"connection", b"").decode("latin-1").lower()
        keep_alive = (
            connection != "close"
            if http_version == "1.1"
            else connection == "keep-alive"
        )

        state = {"started": False, "status": 200}

        async def receive():
            return {"type": "http.request", "body": b"", "more_body": False}

        async def send(message):
            if message["type"] == "http.response.start":
                state["started"] = True
                state["status"] = message["status"]
                lines = [f"HTTP/1.1 {message['status']} {_reason(message['status'])}"]
                has_length = False
                for name, value in message.get("headers", []):
                    if name.lower() == b"content-length":
                        has_length = True
                    lines.append(
                        f"{name.decode('latin-1')}: {value.decode('latin-1')}"
                    )
                if not has_length:
                    lines.append("content-length: 0")
                lines.append(
                    "connection: " + ("keep-alive" if keep_alive else "close")
                )
                writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        await self._app(scope, receive, send)
        if not state["started"]:
            writer.write(b"HTTP/1.1 500 Internal Server Error\r\n\r\n")
        await writer.drain()
        return keep_alive

    def _parse_request(self, blob: bytes):
        head, *header_lines = blob.rstrip(b"\r\n").split(b"\r\n")
        parts = head.split(b" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {head!r}")
        method, target, version = parts
        if not version.startswith(b"HTTP/"):
            raise ValueError(f"malformed HTTP version: {version!r}")
        http_version = version[5:].decode("latin-1")
        path, _, query_string = target.partition(b"?")
        headers: dict[bytes, bytes] = {}
        header_pairs = []
        for line in header_lines:
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            value = value.strip()
            headers[name] = value
            header_pairs.append((name, value))
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": http_version,
            "method": method.decode("latin-1").upper(),
            "scheme": "http",
            "path": unquote_to_bytes(path).decode("utf-8", "replace"),
            "raw_path": path,
            "query_string": query_string,
            "headers": header_pairs,
        }
        return scope, headers, http_version


_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def serve_blocking(app, host: str, port: int) -> None:
    """Run a server until interrupted (the ``repro serve`` loop).

    Announces the bound address on stdout once the socket is listening,
    which is what lets callers (and the CLI tests) use ``--port 0``.
    """
    asyncio.run(_serve_forever(app, host, port))


async def _serve_forever(app, host: str, port: int) -> None:
    server = FacetServer(app, host, port)
    await server.start()
    host, port = server.address
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        # Ctrl-C cancels the task; the listening socket and the app's
        # query executor still close deterministically before the loop
        # is torn down.
        await server.stop()
        _close_app(app)


def _close_app(app) -> None:
    close = getattr(app, "close", None)
    if callable(close):
        close()


@contextlib.contextmanager
def run_in_thread(app, host: str = "127.0.0.1", port: int = 0) -> Iterator[tuple[str, int]]:
    """Run a server on a daemon thread; yields the bound ``(host, port)``."""
    loop = asyncio.new_event_loop()
    server = FacetServer(app, host, port)
    started = threading.Event()
    failure: list[BaseException] = []

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def shutdown() -> None:
        await server.stop()
        current = asyncio.current_task()
        pending = [task for task in asyncio.all_tasks() if task is not current]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        _close_app(app)

    thread = threading.Thread(target=runner, name="repro-serving", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if failure:
        raise ServerError(f"server failed to start: {failure[0]}") from failure[0]
    if server._server is None:
        raise ServerError("server failed to start within 30s")
    address = server.address
    try:
        yield address
    finally:
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
