"""In-process ASGI test client (no sockets, no threads).

Drives a :class:`~repro.serving.app.FacetApp` (or any ASGI 3 app)
directly through the scope/receive/send protocol, so view tests run the
real request path — routing, executor dispatch, timeout enforcement,
ETag handling — without binding a port.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import urlsplit


@dataclass
class Response:
    """One captured ASGI response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> dict:
        return json.loads(self.body)

    def header(self, name: str) -> str | None:
        return self.headers.get(name.lower())


class AsgiClient:
    """Synchronous facade over an ASGI app for tests."""

    def __init__(self, app) -> None:
        self._app = app

    def get(self, url: str, headers: dict[str, str] | None = None) -> Response:
        return self.request("GET", url, headers=headers)

    def head(self, url: str, headers: dict[str, str] | None = None) -> Response:
        return self.request("HEAD", url, headers=headers)

    def request(
        self, method: str, url: str, headers: dict[str, str] | None = None
    ) -> Response:
        parts = urlsplit(url)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": parts.path or "/",
            "raw_path": (parts.path or "/").encode("utf-8"),
            "query_string": parts.query.encode("latin-1"),
            "headers": [
                (name.lower().encode("latin-1"), value.encode("latin-1"))
                for name, value in (headers or {}).items()
            ],
        }
        return asyncio.run(self._call(scope))

    async def _call(self, scope) -> Response:
        response = Response(status=500)
        done = asyncio.Event()

        async def receive():
            await done.wait()  # the app never reads a body in these tests
            return {"type": "http.disconnect"}

        async def send(message):
            if message["type"] == "http.response.start":
                response.status = message["status"]
                response.headers = {
                    name.decode("latin-1").lower(): value.decode("latin-1")
                    for name, value in message.get("headers", [])
                }
            elif message["type"] == "http.response.body":
                response.body += message.get("body", b"")
                if not message.get("more_body", False):
                    done.set()

        await self._app(scope, receive, send)
        return response
