"""repro.serving — the faceted-browsing HTTP service.

Turns a pipeline run into something you can deploy: a read-only index
artifact plus a small async HTTP service over it.

* :class:`FacetIndex` — build/open lifecycle over the versioned SQLite
  artifact (schema :data:`SCHEMA_VERSION`); answers the exact query
  surface of :class:`~repro.core.interface.FacetedInterface`.
* :class:`FacetApp` — stdlib ASGI application serving ``/facets``,
  ``/facets/{term}/children``, ``/drilldown``, ``/documents/{id}``,
  and ``/healthz`` as JSON or minimal HTML.
* :class:`FacetServer` / :func:`run_in_thread` — the asyncio HTTP/1.1
  bridge the ``repro serve`` command uses.

Quickstart::

    import repro
    from repro.serving import FacetIndex, FacetApp

    result = repro.run(corpus)
    index = FacetIndex.build(result, path="facets.idx")
    app = FacetApp(index)           # mount on any ASGI server, or:
    repro.serve(index)              # stdlib server, blocking
"""

from __future__ import annotations

from .app import FacetApp
from .artifact import SCHEMA_VERSION, FacetIndex
from .server import FacetServer, ServerError, run_in_thread, serve_blocking
from .testing import AsgiClient, Response

__all__ = [
    "AsgiClient",
    "FacetApp",
    "FacetIndex",
    "FacetServer",
    "Response",
    "SCHEMA_VERSION",
    "ServerError",
    "run_in_thread",
    "serve_blocking",
]
