"""The serving-ready read-only index artifact (schema ``repro.index/1``).

``FacetIndex.build`` compiles a pipeline run (documents, BM25 postings,
facet hierarchies with materialized parent/child edges and per-node
document-id sets) into a single versioned SQLite file; ``FacetIndex.open``
reopens it in O(1) — no re-tokenization, no hierarchy rebuild — and
answers the exact query surface of
:class:`~repro.core.interface.FacetedInterface` with identical values.
The artifact is immutable after build, so one file can be shared
read-only across any number of serving workers; connections are opened
``mode=ro`` and lazily per thread.

Layout::

    manifest         key/value: schema, counts, content checksums
    documents        one row per document (store column order), position-ordered
    doc_lengths      BM25 document lengths (stopwords excluded)
    postings         (term, doc_id, tf) — words and candidate phrases
    facets           facet roots in display order
    facet_nodes      pre-order nodes with parent edge, depth, count
    facet_node_docs  materialized doc-id set per node (descendants included)

Checksums (``content_sha256`` plus one per section) are computed over
the canonical row streams at build time, stored in the manifest, and
verifiable with :meth:`FacetIndex.verify`; the HTTP layer derives its
ETags from ``content_sha256``.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
from collections.abc import Iterable
from itertools import chain

from ..corpus.document import Document
from ..core.hierarchy import FacetHierarchy
from ..core.interface import FacetCount, FacetedInterface
from ..db.inverted_index import InvertedIndex, Posting
from ..db.search import BM25Searcher
from ..db.store import DOCUMENT_COLUMNS, DocumentStore, document_from_row, document_to_row
from ..errors import HierarchyError, StorageError
from ..observability.logging import get_logger
from ..text.tokenizer import normalize_term

log = get_logger(__name__)

#: The artifact schema this module writes and reads.
SCHEMA_VERSION = "repro.index/1"

_SCHEMA = """
CREATE TABLE manifest (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE documents (
    position   INTEGER PRIMARY KEY,
    doc_id     TEXT NOT NULL UNIQUE,
    title      TEXT NOT NULL,
    body       TEXT NOT NULL,
    source     TEXT NOT NULL,
    published  TEXT NOT NULL,
    gold_topic TEXT,
    gold_entities TEXT,
    gold_facets   TEXT,
    gold_leaked   TEXT
);
CREATE TABLE doc_lengths (
    doc_id TEXT PRIMARY KEY,
    length INTEGER NOT NULL
);
CREATE TABLE postings (
    term   TEXT NOT NULL,
    doc_id TEXT NOT NULL,
    tf     INTEGER NOT NULL,
    PRIMARY KEY (term, doc_id)
) WITHOUT ROWID;
CREATE TABLE facets (
    facet_id     INTEGER PRIMARY KEY,
    root_node_id INTEGER NOT NULL,
    name         TEXT NOT NULL
);
CREATE TABLE facet_nodes (
    node_id   INTEGER PRIMARY KEY,
    facet_id  INTEGER NOT NULL,
    parent_id INTEGER,
    term      TEXT NOT NULL,
    norm_term TEXT NOT NULL,
    depth     INTEGER NOT NULL,
    count     INTEGER NOT NULL
);
CREATE INDEX idx_nodes_norm ON facet_nodes(norm_term, node_id);
CREATE TABLE facet_node_docs (
    node_id INTEGER NOT NULL,
    doc_id  TEXT NOT NULL,
    PRIMARY KEY (node_id, doc_id)
) WITHOUT ROWID;
"""

_ROW_SEP = b"\x1e"
_FIELD_SEP = "\x1f"


def _hash_rows(rows: Iterable[tuple]) -> "hashlib._Hash":
    """Checksum a canonical row stream (order-sensitive, None-safe)."""
    digest = hashlib.sha256()
    for row in rows:
        line = _FIELD_SEP.join(
            "" if value is None else str(value) for value in row
        )
        digest.update(line.encode("utf-8"))
        digest.update(_ROW_SEP)
    return digest


class FacetIndex:
    """A read-only facet-browsing index over a compiled artifact.

    Never constructed directly: :meth:`build` compiles a pipeline result
    into an artifact file and returns it opened; :meth:`open` reopens an
    existing artifact.  All query methods mirror
    :class:`~repro.core.interface.FacetedInterface` and return identical
    values for identical queries.
    """

    def __init__(self, path: str, manifest: dict[str, str]) -> None:
        self._path = path
        self._manifest = manifest
        self._lock = threading.Lock()
        # Separate from _lock: query methods hold _lock around lazy cache
        # fills whose SQL may open this thread's first connection, so the
        # registry needs its own (non-reentrant-safe) lock.
        self._conn_lock = threading.Lock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        self._doc_lengths: dict[str, int] | None = None
        self._node_docs_cache: dict[int, frozenset[str]] = {}
        self._roots: list[tuple[int, str, int]] | None = None

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        result: object,
        store: DocumentStore | None = None,
        *,
        path: str,
    ) -> "FacetIndex":
        """Compile a pipeline run into an artifact at ``path`` and open it.

        ``result`` is a :class:`~repro.core.pipeline.FacetExtractionResult`
        (anything carrying ``documents``, ``hierarchies``, and optionally
        ``store`` works).  ``store`` overrides the document source; the
        BM25 postings always come from an index over ``result.documents``
        — the same objects :meth:`FacetedInterface.from_result` reuses —
        so the artifact answers byte-identically to the in-memory
        interface.  The file is written to a temporary sibling and moved
        into place atomically.
        """
        if store is None:
            store = getattr(result, "store", None)
        documents = list(store) if store is not None else list(result.documents)
        index = getattr(result, "_built_index", None)
        if index is None:
            index = InvertedIndex()
            index.add_documents(list(result.documents))
            if hasattr(result, "_built_index"):
                result._built_index = index
        hierarchies = list(result.hierarchies)
        return cls.build_from_parts(
            documents=documents, index=index, facets=hierarchies, path=path
        )

    @classmethod
    def build_from_parts(
        cls,
        *,
        documents: list[Document],
        index: InvertedIndex,
        facets: list[FacetHierarchy],
        path: str,
    ) -> "FacetIndex":
        """Compile an artifact from already-built pieces (see :meth:`build`)."""
        tmp_path = f"{path}.tmp"
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        connection = sqlite3.connect(tmp_path)
        try:
            manifest = cls._write_artifact(connection, documents, index, facets)
            connection.close()
            connection = None
            os.replace(tmp_path, path)
        except BaseException:
            if connection is not None:
                connection.close()
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            raise
        log.info(
            "index.built",
            path=path,
            documents=len(documents),
            facets=len(facets),
            nodes=int(manifest["node_count"]),
            checksum=manifest["content_sha256"][:16],
        )
        return cls.open(path)

    @staticmethod
    def _write_artifact(
        connection: sqlite3.Connection,
        documents: list[Document],
        index: InvertedIndex,
        facets: list[FacetHierarchy],
    ) -> dict[str, str]:
        """Fill an empty database; returns the manifest it wrote."""
        connection.executescript(_SCHEMA)

        document_rows = [
            (position, *document_to_row(doc))
            for position, doc in enumerate(documents)
        ]
        length_rows = sorted(index.document_lengths().items())
        posting_rows = list(index.iter_postings())

        facet_rows: list[tuple[int, int, str]] = []
        node_rows: list[tuple[int, int, int | None, str, str, int, int]] = []
        node_doc_rows: list[tuple[int, str]] = []
        next_id = 1

        def write_node(node, facet_id: int, parent_id: int | None, depth: int) -> int:
            nonlocal next_id
            node_id = next_id
            next_id += 1
            node_rows.append(
                (
                    node_id,
                    facet_id,
                    parent_id,
                    node.term,
                    normalize_term(node.term),
                    depth,
                    node.count,
                )
            )
            node_doc_rows.extend(
                (node_id, doc_id) for doc_id in sorted(node.doc_ids)
            )
            for child in node.children:
                write_node(child, facet_id, node_id, depth + 1)
            return node_id

        for facet_id, facet in enumerate(facets):
            root_id = write_node(facet.root, facet_id, None, 0)
            facet_rows.append((facet_id, root_id, facet.name))

        documents_sha = _hash_rows(document_rows).hexdigest()
        postings_sha = _hash_rows(
            [*length_rows, *sorted(posting_rows)]
        ).hexdigest()
        facets_sha = _hash_rows(
            [*facet_rows, *node_rows, *node_doc_rows]
        ).hexdigest()
        content = hashlib.sha256(
            f"{documents_sha}\n{postings_sha}\n{facets_sha}".encode("ascii")
        ).hexdigest()

        manifest = {
            "schema": SCHEMA_VERSION,
            "document_count": str(len(documents)),
            "doc_length_total": str(index.total_document_length),
            "posting_count": str(len(posting_rows)),
            "facet_count": str(len(facet_rows)),
            "node_count": str(len(node_rows)),
            "documents_sha256": documents_sha,
            "postings_sha256": postings_sha,
            "facets_sha256": facets_sha,
            "content_sha256": content,
        }

        with connection:
            connection.executemany(
                "INSERT INTO documents VALUES (?,?,?,?,?,?,?,?,?,?)",
                document_rows,
            )
            connection.executemany(
                "INSERT INTO doc_lengths VALUES (?,?)", length_rows
            )
            connection.executemany(
                "INSERT INTO postings VALUES (?,?,?)", posting_rows
            )
            connection.executemany(
                "INSERT INTO facets VALUES (?,?,?)", facet_rows
            )
            connection.executemany(
                "INSERT INTO facet_nodes VALUES (?,?,?,?,?,?,?)", node_rows
            )
            connection.executemany(
                "INSERT INTO facet_node_docs VALUES (?,?)", node_doc_rows
            )
            connection.executemany(
                "INSERT INTO manifest VALUES (?,?)", sorted(manifest.items())
            )
        return manifest

    @classmethod
    def open(cls, path: str) -> "FacetIndex":
        """Open an artifact read-only in O(1) (manifest read, no scans)."""
        if not os.path.isfile(path):
            raise StorageError(f"no index artifact at {path!r}")
        connection = sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, check_same_thread=False
        )
        try:
            rows = connection.execute("SELECT key, value FROM manifest").fetchall()
        except sqlite3.DatabaseError as exc:
            connection.close()
            raise StorageError(
                f"cannot read index artifact at {path!r}: {exc}"
            ) from exc
        manifest = {key: value for key, value in rows}
        schema = manifest.get("schema")
        if schema != SCHEMA_VERSION:
            connection.close()
            raise StorageError(
                f"unsupported index schema {schema!r} at {path!r} "
                f"(expected {SCHEMA_VERSION!r})"
            )
        missing = [
            key
            for key in ("document_count", "doc_length_total", "content_sha256")
            if key not in manifest
        ]
        if missing:
            connection.close()
            raise StorageError(
                f"index manifest at {path!r} is missing keys: {missing}"
            )
        opened = cls(path, manifest)
        opened._adopt_connection(connection)
        return opened

    def _adopt_connection(self, connection: sqlite3.Connection) -> None:
        # Executor threads race each other (and close()) to register the
        # connections they open; the lock keeps the registry consistent
        # so close() can reach every connection ever opened, and a
        # connection adopted after close() is closed immediately instead
        # of leaking.
        with self._conn_lock:
            if self._closed:
                connection.close()
                raise StorageError(f"index at {self._path!r} is closed")
            self._connections.append(connection)
        self._local.connection = connection

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise StorageError(f"index at {self._path!r} is closed")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(
                f"file:{self._path}?mode=ro", uri=True, check_same_thread=False
            )
            self._adopt_connection(connection)
        return connection

    def close(self) -> None:
        """Close every connection this index opened (all threads)."""
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            for connection in self._connections:
                try:
                    connection.close()
                except sqlite3.Error:  # pragma: no cover - close is best effort
                    log.warning("index.close_failed", path=self._path)
            self._connections.clear()
        self._local = threading.local()

    def __enter__(self) -> "FacetIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- metadata -----------------------------------------------------------------

    @property
    def path(self) -> str:
        """Filesystem location of the artifact."""
        return self._path

    @property
    def manifest(self) -> dict[str, str]:
        """The artifact manifest (copy)."""
        return dict(self._manifest)

    @property
    def checksum(self) -> str:
        """Content checksum (ETag source for the HTTP layer)."""
        return self._manifest["content_sha256"]

    @property
    def document_count(self) -> int:
        return int(self._manifest["document_count"])

    @property
    def facet_count(self) -> int:
        return int(self._manifest["facet_count"])

    @property
    def node_count(self) -> int:
        return int(self._manifest["node_count"])

    def verify(self) -> bool:
        """Recompute every section checksum against the manifest."""
        connection = self._connection()
        documents_sha = _hash_rows(
            connection.execute(
                f"SELECT position, {', '.join(DOCUMENT_COLUMNS)} "
                "FROM documents ORDER BY position"
            )
        ).hexdigest()
        postings_sha = _hash_rows(
            chain(
                connection.execute(
                    "SELECT doc_id, length FROM doc_lengths ORDER BY doc_id"
                ),
                connection.execute(
                    "SELECT term, doc_id, tf FROM postings ORDER BY term, doc_id"
                ),
            )
        ).hexdigest()
        facets_sha = _hash_rows(
            chain(
                connection.execute(
                    "SELECT facet_id, root_node_id, name FROM facets"
                    " ORDER BY facet_id"
                ),
                connection.execute(
                    "SELECT node_id, facet_id, parent_id, term, norm_term,"
                    " depth, count FROM facet_nodes ORDER BY node_id"
                ),
                connection.execute(
                    "SELECT node_id, doc_id FROM facet_node_docs"
                    " ORDER BY node_id, doc_id"
                ),
            )
        ).hexdigest()
        content = hashlib.sha256(
            f"{documents_sha}\n{postings_sha}\n{facets_sha}".encode("ascii")
        ).hexdigest()
        (posting_count,) = connection.execute(
            "SELECT COUNT(*) FROM postings"
        ).fetchone()
        return (
            documents_sha == self._manifest.get("documents_sha256")
            and postings_sha == self._manifest.get("postings_sha256")
            and facets_sha == self._manifest.get("facets_sha256")
            and content == self._manifest.get("content_sha256")
            and int(posting_count) == int(self._manifest.get("posting_count", -1))
        )

    # -- facet navigation ----------------------------------------------------------

    def _root_rows(self) -> list[tuple[int, str, int]]:
        """(root_node_id, term, count) per facet, in display order."""
        if self._roots is None:
            with self._lock:
                if self._roots is None:
                    rows = self._connection().execute(
                        "SELECT n.node_id, n.term, n.count"
                        " FROM facets f JOIN facet_nodes n"
                        " ON n.node_id = f.root_node_id"
                        " ORDER BY f.facet_id"
                    ).fetchall()
                    self._roots = [(row[0], row[1], row[2]) for row in rows]
        return self._roots

    def facet_names(self) -> list[str]:
        """Facet root terms, in display order."""
        return [term for _node_id, term, _count in self._root_rows()]

    def top_level_counts(self) -> list[FacetCount]:
        """The facet roots with document counts (the sidebar view)."""
        return [
            FacetCount(term, count, depth=0)
            for _node_id, term, count in self._root_rows()
        ]

    def _node_row(self, term: str) -> tuple[int, str, int, int] | None:
        """(node_id, term, depth, count) of the first matching node."""
        row = self._connection().execute(
            "SELECT node_id, term, depth, count FROM facet_nodes"
            " WHERE norm_term = ? ORDER BY node_id LIMIT 1",
            (normalize_term(term),),
        ).fetchone()
        return None if row is None else (row[0], row[1], row[2], row[3])

    def _require_node(self, term: str) -> tuple[int, str, int, int]:
        row = self._node_row(term)
        if row is None:
            raise HierarchyError(f"no facet node for term: {term!r}")
        return row

    def has_node(self, term: str) -> bool:
        return self._node_row(term) is not None

    def depth(self, term: str) -> int:
        """Tree depth of a facet node (roots are depth 0)."""
        return self._require_node(term)[2]

    def children(self, term: str) -> list[FacetCount]:
        """Child nodes of a facet node, with counts (drill-down view)."""
        node_id, _term, _depth, _count = self._require_node(term)
        rows = self._connection().execute(
            "SELECT term, count, depth FROM facet_nodes"
            " WHERE parent_id = ? ORDER BY node_id",
            (node_id,),
        ).fetchall()
        return [FacetCount(row[0], row[1], depth=row[2]) for row in rows]

    def breadcrumb(self, term: str) -> list[str]:
        """Root-to-node trail of a facet node (for display)."""
        node_id, _term, _depth, _count = self._require_node(term)
        trail: list[str] = []
        connection = self._connection()
        current: int | None = node_id
        while current is not None:
            row = connection.execute(
                "SELECT term, parent_id FROM facet_nodes WHERE node_id = ?",
                (current,),
            ).fetchone()
            trail.append(row[0])
            current = row[1]
        trail.reverse()
        return trail

    # -- documents -----------------------------------------------------------------

    def document(self, doc_id: str) -> Document:
        """Fetch one document by id (:class:`StorageError` when unknown)."""
        row = self._connection().execute(
            f"SELECT {', '.join(DOCUMENT_COLUMNS)} FROM documents"
            " WHERE doc_id = ?",
            (doc_id,),
        ).fetchone()
        if row is None:
            raise StorageError(f"unknown doc_id: {doc_id!r}")
        return document_from_row(row)

    def _documents_for(self, doc_ids: Iterable[str]) -> list[Document]:
        return [self.document(doc_id) for doc_id in doc_ids]

    def _node_doc_ids(self, node_id: int) -> frozenset[str]:
        cached = self._node_docs_cache.get(node_id)
        if cached is None:
            rows = self._connection().execute(
                "SELECT doc_id FROM facet_node_docs WHERE node_id = ?",
                (node_id,),
            ).fetchall()
            cached = frozenset(row[0] for row in rows)
            self._node_docs_cache[node_id] = cached
        return cached

    # -- OLAP-style selection -------------------------------------------------------

    def slice(self, term: str) -> list[Document]:
        """Documents under one facet node."""
        node_id = self._require_node(term)[0]
        return self._documents_for(sorted(self._node_doc_ids(node_id)))

    def dice(self, terms: list[str]) -> list[Document]:
        """Documents satisfying *all* facet constraints (cube dice)."""
        if not terms:
            rows = self._connection().execute(
                "SELECT doc_id FROM documents ORDER BY position"
            ).fetchall()
            return self._documents_for(row[0] for row in rows)
        doc_ids: set[str] | None = None
        for term in terms:
            node_docs = self._node_doc_ids(self._require_node(term)[0])
            doc_ids = set(node_docs) if doc_ids is None else doc_ids & node_docs
        return self._documents_for(sorted(doc_ids or set()))

    def union(self, terms: list[str]) -> list[Document]:
        """Documents under *any* of the facet nodes."""
        doc_ids: set[str] = set()
        for term in terms:
            doc_ids |= self._node_doc_ids(self._require_node(term)[0])
        return self._documents_for(sorted(doc_ids))

    # -- search integration ---------------------------------------------------------

    def _lengths(self) -> dict[str, int]:
        if self._doc_lengths is None:
            with self._lock:
                if self._doc_lengths is None:
                    rows = self._connection().execute(
                        "SELECT doc_id, length FROM doc_lengths"
                    ).fetchall()
                    self._doc_lengths = {row[0]: row[1] for row in rows}
        return self._doc_lengths

    def _searcher(self) -> BM25Searcher:
        return BM25Searcher(_SqlSearchAdapter(self))

    def search(self, query: str, limit: int = 10) -> list[Document]:
        """Plain BM25 keyword search."""
        return self._documents_for(
            result.doc_id for result in self._searcher().search(query, limit=limit)
        )

    def search_with_facets(
        self, query: str, facet_terms: list[str], limit: int = 10
    ) -> list[Document]:
        """Keyword search restricted to documents matching facet constraints."""
        allowed: set[str] | None = None
        if facet_terms:
            allowed = {doc.doc_id for doc in self.dice(facet_terms)}
        results = []
        for result in self._searcher().search(query, limit=limit * 10):
            if allowed is None or result.doc_id in allowed:
                results.append(self.document(result.doc_id))
                if len(results) >= limit:
                    break
        return results

    def facet_counts_for(
        self, doc_ids: set[str], max_facets: int = 10
    ) -> list[FacetCount]:
        """Per-facet counts restricted to a result set (dynamic faceting)."""
        counts = []
        for node_id, term, _count in self._root_rows():
            overlap = len(self._node_doc_ids(node_id) & doc_ids)
            if overlap:
                counts.append(FacetCount(term, overlap, depth=0))
        counts.sort(key=lambda fc: (-fc.count, fc.term))
        return counts[:max_facets]

    # -- interoperability -----------------------------------------------------------

    def to_interface(self) -> FacetedInterface:
        """Materialize an in-memory interface from the artifact.

        Loads every document and rebuilds the inverted index — the
        opposite trade-off to :meth:`open`; useful for offline analysis
        of a shipped artifact, not for serving.
        """
        store = DocumentStore(self.dice([]))
        facets = _load_hierarchies(self._connection())
        return FacetedInterface(store=store, facets=facets)


class _SqlSearchAdapter:
    """Duck-typed :class:`InvertedIndex` view over the artifact tables.

    Feeds :class:`BM25Searcher` the exact statistics the in-memory index
    exposes — same document count, exact integer length total (so the
    average-length division is bit-identical), same per-term postings —
    which is what keeps artifact search results equal to in-memory ones.
    """

    def __init__(self, index: FacetIndex) -> None:
        self._index = index

    @property
    def document_count(self) -> int:
        return self._index.document_count

    @property
    def average_document_length(self) -> float:
        count = self._index.document_count
        if not count:
            return 0.0
        return int(self._index.manifest["doc_length_total"]) / count

    def document_frequency(self, term: str) -> int:
        row = self._index._connection().execute(
            "SELECT COUNT(*) FROM postings WHERE term = ?", (term,)
        ).fetchone()
        return row[0]

    def document_length(self, doc_id: str) -> int:
        return self._index._lengths().get(doc_id, 0)

    def postings(self, term: str) -> list[Posting]:
        rows = self._index._connection().execute(
            "SELECT doc_id, tf FROM postings WHERE term = ?", (term,)
        ).fetchall()
        return [Posting(row[0], row[1]) for row in rows]


def _load_hierarchies(connection: sqlite3.Connection) -> list[FacetHierarchy]:
    """Rebuild FacetHierarchy trees from the artifact node tables."""
    from ..core.hierarchy import FacetNode

    nodes: dict[int, FacetNode] = {}
    parents: dict[int, int | None] = {}
    for node_id, parent_id, term in connection.execute(
        "SELECT node_id, parent_id, term FROM facet_nodes ORDER BY node_id"
    ):
        nodes[node_id] = FacetNode(term=term)
        parents[node_id] = parent_id
    for node_id, doc_id in connection.execute(
        "SELECT node_id, doc_id FROM facet_node_docs ORDER BY node_id, doc_id"
    ):
        nodes[node_id].doc_ids.add(doc_id)
    for node_id, parent_id in parents.items():
        if parent_id is not None:
            nodes[parent_id].children.append(nodes[node_id])
    roots = [
        row[0]
        for row in connection.execute(
            "SELECT root_node_id FROM facets ORDER BY facet_id"
        )
    ]
    return [FacetHierarchy(root=nodes[root_id]) for root_id in roots]
