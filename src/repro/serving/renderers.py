"""Response renderers for the faceted-browsing service.

Every route builds its payload here through a *browser* — the duck-typed
query surface shared by :class:`~repro.core.interface.FacetedInterface`
and :class:`~repro.serving.artifact.FacetIndex` — and serializes it with
:func:`canonical_json`.  Because the HTTP layer and the in-memory
interface run the exact same builder over backends that answer
identically, a ``/drilldown`` response body is byte-identical to what
the same query produces against ``FacetedInterface`` (the artifact
round-trip tests assert this).

Payload schema string: ``repro.serving/1``.
"""

from __future__ import annotations

import html
import json

from ..corpus.document import Document

#: Version tag embedded in every JSON payload.
PAYLOAD_SCHEMA = "repro.serving/1"


def canonical_json(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def _facet_count_item(fc) -> dict:
    return {"term": fc.term, "count": fc.count, "depth": fc.depth}


def _document_summary(doc: Document) -> dict:
    return {
        "doc_id": doc.doc_id,
        "title": doc.title,
        "source": doc.source,
        "published": doc.published.isoformat(),
    }


# -- payload builders (shared by HTTP service and parity tests) -----------------


def facets_payload(browser) -> dict:
    """``GET /facets`` — the facet roots plus collection stats."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "document_count": browser.document_count,
        "facets": [_facet_count_item(fc) for fc in browser.top_level_counts()],
    }


def children_payload(browser, term: str) -> dict:
    """``GET /facets/{term}/children`` — one node's drill-down view."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "term": term,
        "depth": browser.depth(term),
        "breadcrumb": browser.breadcrumb(term),
        "children": [_facet_count_item(fc) for fc in browser.children(term)],
    }


def drilldown_payload(
    browser,
    *,
    terms: list[str],
    query: str | None,
    limit: int,
) -> dict:
    """``GET /drilldown`` — multi-facet slice/dice, optionally BM25-intersected.

    Facet constraints select the slice (all of ``terms`` must hold); a
    keyword ``query`` ranks within it via BM25.  Without a query the
    matched set is exact and ``total`` counts it all while ``documents``
    is truncated to ``limit``; with a query, ranking already caps the
    result list at ``limit``.
    """
    if query:
        documents = browser.search_with_facets(query, terms, limit=limit)
        matched_ids = {doc.doc_id for doc in documents}
        total = len(documents)
        shown = documents
    else:
        documents = browser.dice(terms)
        matched_ids = {doc.doc_id for doc in documents}
        total = len(documents)
        shown = documents[:limit]
    return {
        "schema": PAYLOAD_SCHEMA,
        "query": {"terms": terms, "q": query or "", "limit": limit},
        "total": total,
        "documents": [_document_summary(doc) for doc in shown],
        "facet_counts": [
            _facet_count_item(fc) for fc in browser.facet_counts_for(matched_ids)
        ],
    }


def document_payload(browser, doc_id: str) -> dict:
    """``GET /documents/{id}`` — one full document."""
    doc = browser.document(doc_id)
    payload = {
        "schema": PAYLOAD_SCHEMA,
        **_document_summary(doc),
        "body": doc.body,
    }
    if doc.gold is not None:
        payload["gold"] = {
            "topic": doc.gold.topic,
            "entity_names": list(doc.gold.entity_names),
            "facet_terms": list(doc.gold.facet_terms),
            "leaked_terms": list(doc.gold.leaked_terms),
        }
    return payload


def error_payload(status: int, message: str) -> dict:
    """The uniform error envelope for every non-2xx JSON response."""
    return {"schema": PAYLOAD_SCHEMA, "error": {"status": status, "message": message}}


# -- HTML renderers (minimal, for browsing without tooling) ---------------------

_PAGE = """<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>body{{font-family:sans-serif;max-width:60em;margin:2em auto}}
li{{margin:.2em 0}}</style></head>
<body><h1>{title}</h1>{body}</body></html>"""


def _render_page(title: str, body: str) -> bytes:
    return _PAGE.format(title=html.escape(title), body=body).encode("utf-8")


def _facet_list_html(items: list[dict], link: str) -> str:
    rows = "".join(
        '<li><a href="{href}">{term}</a> ({count})</li>'.format(
            href=link.format(term=html.escape(item["term"], quote=True)),
            term=html.escape(item["term"]),
            count=item["count"],
        )
        for item in items
    )
    return f"<ul>{rows}</ul>" if rows else "<p>none</p>"


def facets_html(payload: dict) -> bytes:
    body = "<p>{n} documents</p>{facets}".format(
        n=payload["document_count"],
        facets=_facet_list_html(payload["facets"], "/facets/{term}/children"),
    )
    return _render_page("Facets", body)


def children_html(payload: dict) -> bytes:
    crumb = " &rsaquo; ".join(html.escape(t) for t in payload["breadcrumb"])
    body = "<p>{crumb}</p>{children}".format(
        crumb=crumb,
        children=_facet_list_html(payload["children"], "/facets/{term}/children"),
    )
    return _render_page(f"Facet: {payload['term']}", body)


def drilldown_html(payload: dict) -> bytes:
    docs = "".join(
        '<li><a href="/documents/{id}">{title}</a> <small>{src}</small></li>'.format(
            id=html.escape(doc["doc_id"], quote=True),
            title=html.escape(doc["title"]),
            src=html.escape(doc["source"]),
        )
        for doc in payload["documents"]
    )
    body = "<p>{total} matching</p><ul>{docs}</ul>".format(
        total=payload["total"], docs=docs
    )
    return _render_page("Drilldown", body)


def document_html(payload: dict) -> bytes:
    body = "<p><small>{src} — {pub}</small></p><p>{text}</p>".format(
        src=html.escape(payload["source"]),
        pub=html.escape(payload["published"]),
        text=html.escape(payload["body"]),
    )
    return _render_page(payload["title"], body)


def error_html(payload: dict) -> bytes:
    err = payload["error"]
    return _render_page(
        f"Error {err['status']}", f"<p>{html.escape(err['message'])}</p>"
    )
