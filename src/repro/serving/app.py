"""The faceted-browsing ASGI application (stdlib only, no framework).

:class:`FacetApp` is a plain ASGI 3 callable serving the browsing API
over any *browser* backend — normally a read-only
:class:`~repro.serving.artifact.FacetIndex`, but an in-memory
:class:`~repro.core.interface.FacetedInterface` works identically
(useful in tests and notebooks).  Routes::

    GET /                         facet roots (alias of /facets)
    GET /facets                   facet roots + collection stats
    GET /facets/{term}/children   one node's drill-down view
    GET /drilldown?facet=a&facet=b&q=...&limit=N
                                  multi-facet slice/dice, BM25-intersected
    GET /documents/{id}           one full document
    GET /healthz                  liveness + artifact metadata

Responses are JSON by default; ``?format=html`` (or an ``Accept``
header preferring ``text/html``) selects the minimal HTML renderer.
Every view is async but never blocks the event loop: backend queries
(including the ``/healthz`` probe) run on an executor the app owns
under ``asyncio.wait_for`` with the configured per-request time budget
(exceeded → 503), row counts are clamped to ``max_limit`` (exceeded →
400), and data responses carry an ETag derived from the artifact
checksum plus ``Cache-Control`` so conditional requests short-circuit
to 304 without touching the backend.  :meth:`FacetApp.close` shuts the
executor down; the server teardown paths call it so ``repro serve``
exits without leaking worker threads.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from urllib.parse import parse_qs, unquote

from ..config import ServingConfig
from ..errors import HierarchyError, StorageError
from ..observability import DISABLED, Observability, Span
from ..observability import names as obs_names
from ..observability.logging import get_logger
from . import renderers

log = get_logger(__name__)

_JSON = "application/json; charset=utf-8"
_HTML = "text/html; charset=utf-8"


class _BadRequest(Exception):
    """Raised by parameter validation; rendered as a 400 envelope."""


class FacetApp:
    """ASGI 3 application over a facet-browsing backend.

    ``browser`` is anything implementing the shared query surface
    (``FacetIndex`` or ``FacetedInterface``).  ETags are emitted only
    when the backend exposes a ``checksum`` (artifacts do; in-memory
    interfaces have no stable content identity).
    """

    def __init__(
        self,
        browser,
        *,
        config: ServingConfig | None = None,
        observability: Observability | None = None,
    ) -> None:
        self._browser = browser
        self._config = config if config is not None else ServingConfig()
        self._obs = observability if observability is not None else DISABLED
        self._checksum: str | None = getattr(browser, "checksum", None)
        # Owned rather than the loop's default executor so teardown is
        # deterministic: close() joins these threads instead of leaving
        # them to interpreter exit.
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-serving-query"
        )
        self._closed = False

    def close(self) -> None:
        """Shut down the query executor (idempotent).

        In-flight queries are abandoned to their threads; queued ones
        are cancelled.  Called by the server teardown paths
        (``serve_blocking`` and ``run_in_thread``).
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "FacetApp":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- ASGI entry point ----------------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            return
        await self._handle(scope, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- request handling ----------------------------------------------------------

    async def _handle(self, scope, send) -> None:
        method = scope["method"]
        path = scope["path"]
        query_string = scope.get("query_string", b"").decode("latin-1")
        query = parse_qs(query_string)
        wants_html = self._wants_html(scope, query)
        tracer = self._obs.tracer
        span = (
            Span.begin(obs_names.SPAN_SERVING_REQUEST, method=method, path=path)
            if tracer.enabled
            else None
        )

        status, body, headers = await self._respond(
            scope, method, path, query_string, query, wants_html
        )
        if method == "HEAD":
            body = b""
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

        if span is not None:
            span.set(status=status)
            tracer.attach(span.finish("ok" if status < 500 else "error"))
        metrics = self._obs.metrics
        if metrics is not None:
            metrics.increment(obs_names.SERVING_REQUESTS)
            metrics.increment(obs_names.serving_status(status))
            if span is not None:
                metrics.record_time(obs_names.SERVING_REQUEST_SECONDS, span.duration)
        log.info("serving.request", method=method, path=path, status=status)

    async def _respond(
        self,
        scope,
        method: str,
        path: str,
        query_string: str,
        query: dict[str, list[str]],
        wants_html: bool,
    ) -> tuple[int, bytes, list[tuple[str, str]]]:
        if method not in ("GET", "HEAD"):
            return self._error(405, f"method {method} not allowed", wants_html)
        if path == "/healthz":
            return await self._healthz()
        try:
            builder, html_renderer = self._resolve(path, query)
        except _BadRequest as exc:
            return self._error(400, str(exc), wants_html)
        if builder is None:
            return self._error(404, f"no route for {path}", wants_html)

        etag = self._etag(path, query_string)
        if etag is not None and self._if_none_match_hit(scope, etag):
            return 304, b"", self._cache_headers(etag)

        try:
            payload = await asyncio.wait_for(
                asyncio.get_running_loop().run_in_executor(self._executor, builder),
                timeout=self._config.time_budget_seconds,
            )
        except asyncio.TimeoutError:
            return self._error(
                503,
                "query exceeded the "
                f"{self._config.time_budget_seconds}s time budget",
                wants_html,
            )
        except HierarchyError as exc:
            return self._error(404, str(exc), wants_html)
        except StorageError as exc:
            return self._error(404, str(exc), wants_html)

        if wants_html:
            body, content_type = html_renderer(payload), _HTML
        else:
            body, content_type = renderers.canonical_json(payload), _JSON
        headers = [("content-type", content_type)]
        headers.extend(self._cache_headers(etag))
        headers.append(("content-length", str(len(body))))
        return 200, body, headers

    def _resolve(self, path: str, query: dict[str, list[str]]):
        """Map a path to (payload builder, HTML renderer); (None, None)
        when no route matches.  Raises :class:`_BadRequest` on bad
        parameters."""
        browser = self._browser
        if path in ("/", "/facets"):
            return partial(renderers.facets_payload, browser), renderers.facets_html
        parts = [unquote(part) for part in path.split("/")]
        if len(parts) == 4 and parts[1] == "facets" and parts[3] == "children":
            term = parts[2]
            if not term:
                raise _BadRequest("facet term must not be empty")
            return (
                partial(renderers.children_payload, browser, term),
                renderers.children_html,
            )
        if path == "/drilldown":
            terms = [t for t in query.get("facet", []) if t]
            q = (query.get("q", [""])[-1] or "").strip() or None
            limit = self._parse_limit(query)
            return (
                partial(
                    renderers.drilldown_payload,
                    browser,
                    terms=terms,
                    query=q,
                    limit=limit,
                ),
                renderers.drilldown_html,
            )
        if len(parts) == 3 and parts[1] == "documents":
            doc_id = parts[2]
            if not doc_id:
                raise _BadRequest("document id must not be empty")
            return (
                partial(renderers.document_payload, browser, doc_id),
                renderers.document_html,
            )
        return None, None

    async def _healthz(self) -> tuple[int, bytes, list[tuple[str, str]]]:
        def probe() -> tuple[int, int]:
            # Artifact backends answer these from SQLite, so the probe
            # belongs on the executor with every other backend query.
            return self._browser.document_count, len(self._browser.facet_names())

        document_count, facet_count = await asyncio.get_running_loop().run_in_executor(
            self._executor, probe
        )
        payload = {
            "schema": renderers.PAYLOAD_SCHEMA,
            "status": "ok",
            "document_count": document_count,
            "facet_count": facet_count,
        }
        if self._checksum is not None:
            payload["checksum"] = self._checksum
        body = renderers.canonical_json(payload)
        headers = [
            ("content-type", _JSON),
            ("cache-control", "no-store"),
            ("content-length", str(len(body))),
        ]
        return 200, body, headers

    # -- parameters and headers ------------------------------------------------------

    def _parse_limit(self, query: dict[str, list[str]]) -> int:
        raw = query.get("limit", [None])[-1]
        if raw is None:
            return self._config.default_limit
        try:
            value = int(raw)
        except ValueError:
            raise _BadRequest(f"limit must be an integer, got {raw!r}") from None
        if not 1 <= value <= self._config.max_limit:
            raise _BadRequest(
                f"limit must be in [1, {self._config.max_limit}], got {value}"
            )
        return value

    def _wants_html(self, scope, query: dict[str, list[str]]) -> bool:
        fmt = query.get("format", [None])[-1]
        if fmt is not None:
            if fmt not in ("json", "html"):
                return False
            return fmt == "html"
        accept = self._header(scope, b"accept")
        if accept is None:
            return False
        return "text/html" in accept and accept.index("text/html") < (
            accept.index("application/json")
            if "application/json" in accept
            else len(accept)
        )

    @staticmethod
    def _header(scope, name: bytes) -> str | None:
        for key, value in scope.get("headers", ()):
            if key.lower() == name:
                return value.decode("latin-1")
        return None

    def _etag(self, path: str, query_string: str) -> str | None:
        if self._checksum is None:
            return None
        raw = f"{self._checksum}|{path}?{query_string}"
        return '"' + hashlib.sha256(raw.encode("utf-8")).hexdigest()[:32] + '"'

    def _if_none_match_hit(self, scope, etag: str) -> bool:
        header = self._header(scope, b"if-none-match")
        if header is None:
            return False
        tags = [tag.strip() for tag in header.split(",")]
        return etag in tags or "*" in tags

    def _cache_headers(self, etag: str | None) -> list[tuple[str, str]]:
        if etag is None:
            return [("cache-control", "no-cache")]
        return [
            ("etag", etag),
            ("cache-control", f"public, max-age={self._config.cache_max_age}"),
        ]

    def _error(
        self, status: int, message: str, wants_html: bool
    ) -> tuple[int, bytes, list[tuple[str, str]]]:
        payload = renderers.error_payload(status, message)
        if wants_html:
            body, content_type = renderers.error_html(payload), _HTML
        else:
            body, content_type = renderers.canonical_json(payload), _JSON
        headers = [
            ("content-type", content_type),
            ("cache-control", "no-store"),
            ("content-length", str(len(body))),
        ]
        return status, body, headers
