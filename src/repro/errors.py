"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CorpusError(ReproError):
    """A corpus could not be generated or loaded."""


class KnowledgeBaseError(ReproError):
    """The knowledge base is inconsistent or an entity is missing."""


class ResourceError(ReproError):
    """An external-resource simulation failed to answer a query."""


class ExtractionError(ReproError):
    """A term extractor failed on a document."""


class StorageError(ReproError):
    """The document store or an index rejected an operation."""


class HierarchyError(ReproError):
    """A facet hierarchy could not be constructed or navigated."""


class EvaluationError(ReproError):
    """An evaluation harness was invoked with inconsistent inputs."""
