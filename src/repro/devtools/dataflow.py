"""Forward data-flow analyses over :mod:`repro.devtools.cfg` graphs.

Two layers live here:

* a tiny generic **worklist solver** for forward may-analyses whose
  facts are sets (:func:`solve_forward`);
* **reaching definitions** built on it: for every statement, which
  definitions of each local name may still be live when the statement
  executes.  This is what lets the flow rules answer "was this variable
  rebound through ``sorted(...)`` on *every* path before the loop?" or
  "does the raw response from ``_query`` reach this ``put`` call?".

A *definition* is any syntactic binding: assignment (plain, annotated,
augmented, walrus), a ``for`` target, a ``with ... as`` name, or an
``import``.  Compound statements are handled **shallowly** — a ``for``
appearing in a loop-header block defines its target and uses its
iterable, but its body belongs to other blocks and is not re-walked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .cfg import CFG

__all__ = [
    "Definition",
    "ReachingDefinitions",
    "assigned_names",
    "pruned_walk",
    "solve_forward",
    "solve_forward_env",
]

#: Node types whose subtrees are separate scopes for most analyses.
_DEFAULT_PRUNE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def pruned_walk(root: ast.AST, prune: "tuple[type, ...]" = _DEFAULT_PRUNE):
    """Yield ``root`` and descendants, *pruning* subtrees rooted at the
    given node types (unlike ``ast.walk``, which always descends)."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, prune):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def shallow_expressions(stmt: ast.stmt) -> "list[ast.AST]":
    """Expression roots belonging to ``stmt`` itself when it sits in a
    CFG block — compound bodies are separate statements and excluded."""
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, (ast.If, ast.While, ast.Try)):
        return []  # tests are wrapped as their own Expr statements
    return [stmt]


@dataclass(frozen=True)
class Definition:
    """One binding of ``name`` produced by ``node`` (value may be None
    for bindings with no usable right-hand side, e.g. imports)."""

    name: str
    node: ast.AST
    value: "ast.expr | None"

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


def solve_forward(
    cfg: CFG,
    gen: dict[int, frozenset],
    kill: dict[int, frozenset],
) -> "tuple[dict[int, frozenset], dict[int, frozenset]]":
    """Classic union/worklist forward solver.

    ``in[b] = U out[p] for p in preds; out[b] = gen[b] | (in[b] - kill[b])``.
    Returns ``(in_sets, out_sets)``; iteration order is reverse postorder
    so most graphs converge in two passes.
    """
    order = cfg.reverse_postorder()
    in_sets: dict[int, frozenset] = {b: frozenset() for b in cfg.blocks}
    out_sets: dict[int, frozenset] = {b: frozenset() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block_id in order:
            block = cfg.blocks[block_id]
            incoming = frozenset().union(
                *(out_sets[p] for p in block.predecessors)
            ) if block.predecessors else frozenset()
            outgoing = gen[block_id] | (incoming - kill[block_id])
            if incoming != in_sets[block_id] or outgoing != out_sets[block_id]:
                in_sets[block_id] = incoming
                out_sets[block_id] = outgoing
                changed = True
    return in_sets, out_sets


def solve_forward_env(
    cfg: CFG,
    transfer,
    join,
    initial,
) -> "tuple[dict[int, object], dict[int, object]]":
    """Forward fixed point for arbitrary (non-set) abstract domains.

    ``transfer(block_id, in_state) -> out_state`` interprets one block;
    ``join(states) -> state`` merges the predecessors' out-states (it is
    given a non-empty list); ``initial`` is the entry in-state *and* the
    bottom state for blocks with no predecessors.  States must be
    hashable-free value objects compared with ``==``; the solver
    iterates in reverse postorder until nothing changes.  Used by the
    must-close lattice in :mod:`repro.devtools.lifecycle`.
    """
    order = cfg.reverse_postorder()
    in_states: dict[int, object] = {b: initial for b in cfg.blocks}
    out_states: dict[int, object] = {
        b: transfer(b, initial) for b in cfg.blocks
    }
    changed = True
    while changed:
        changed = False
        for block_id in order:
            preds = cfg.blocks[block_id].predecessors
            if preds:
                incoming = join([out_states[p] for p in preds])
            else:
                incoming = initial
            if incoming == in_states[block_id]:
                continue
            in_states[block_id] = incoming
            outgoing = transfer(block_id, incoming)
            if outgoing != out_states[block_id]:
                out_states[block_id] = outgoing
            changed = True
    return in_states, out_states


# -- definition extraction ----------------------------------------------------------


def _target_names(target: ast.expr) -> "list[str]":
    """Plain names bound by an assignment target (tuples unpacked;
    attribute/subscript stores are not local bindings)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def statement_definitions(stmt: ast.stmt) -> "list[Definition]":
    """Shallow definitions produced directly by one statement."""
    defs: list[Definition] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                defs.append(Definition(name, stmt, stmt.value))
    elif isinstance(stmt, ast.AnnAssign):
        for name in _target_names(stmt.target):
            defs.append(Definition(name, stmt, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            # x += e keeps x's old character and mixes in e; record the
            # augmentation with the old value as part of the node.
            defs.append(Definition(name, stmt, stmt.value))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            defs.append(Definition(name, stmt, None))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    defs.append(Definition(name, stmt, None))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            if bound != "*":
                defs.append(Definition(bound, stmt, None))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs.append(Definition(stmt.name, stmt, None))
    elif isinstance(stmt, ast.Expr):
        pass  # walrus handled below for all statements
    # Walrus targets in the statement's *own* expressions — compound
    # bodies are separate CFG statements and must not be re-walked.
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        walrus_roots: list[ast.AST] = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        walrus_roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        walrus_roots = []
    elif isinstance(stmt, (ast.If, ast.While, ast.Try)):
        walrus_roots = []  # tests are wrapped as their own Expr statements
    else:
        walrus_roots = [stmt]
    for root in walrus_roots:
        for node in pruned_walk(root):
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                defs.append(Definition(node.target.id, node, node.value))
    return defs


def assigned_names(body: "list[ast.stmt]") -> "set[str]":
    """Every name bound anywhere in ``body`` (shallow per statement but
    recursing through compound-statement bodies, not nested defs)."""
    names: set[str] = set()
    stack: list[ast.stmt] = list(body)
    while stack:
        stmt = stack.pop()
        for definition in statement_definitions(stmt):
            names.add(definition.name)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler,)):
                if child.name:
                    names.add(child.name)
                stack.extend(child.body)
    return names


# -- reaching definitions -----------------------------------------------------------


class ReachingDefinitions:
    """Reaching definitions for one function (or module) body.

    Definitions are interned per ``(statement, name)``; the API answers
    "which definitions of ``name`` may reach this statement?" at
    statement granularity by replaying each block linearly from its
    solved in-set.
    """

    def __init__(self, cfg: CFG, parameters: "list[str] | None" = None) -> None:
        self.cfg = cfg
        self._defs: list[Definition] = []
        self._param_defs: dict[str, int] = {}
        # Collect per-block, per-statement definitions.
        self._block_defs: dict[int, list[tuple[ast.stmt, list[int]]]] = {}
        by_name: dict[str, list[int]] = {}
        for name in parameters or []:
            index = len(self._defs)
            self._defs.append(Definition(name, ast.arguments(), None))
            self._param_defs[name] = index
            by_name.setdefault(name, []).append(index)
        for block_id, block in cfg.blocks.items():
            rows: list[tuple[ast.stmt, list[int]]] = []
            for stmt in block.statements:
                indices: list[int] = []
                for definition in statement_definitions(stmt):
                    index = len(self._defs)
                    self._defs.append(definition)
                    by_name.setdefault(definition.name, []).append(index)
                    indices.append(index)
                rows.append((stmt, indices))
            self._block_defs[block_id] = rows
        self._by_name = {name: frozenset(ids) for name, ids in by_name.items()}
        # gen/kill per block: last definition of each name wins.
        gen: dict[int, frozenset] = {}
        kill: dict[int, frozenset] = {}
        for block_id, rows in self._block_defs.items():
            latest: dict[str, int] = {}
            killed: set[int] = set()
            for _stmt, indices in rows:
                for index in indices:
                    name = self._defs[index].name
                    killed |= set(self._by_name.get(name, frozenset()))
                    latest[name] = index
            gen[block_id] = frozenset(latest.values())
            kill[block_id] = frozenset(killed - set(latest.values()))
        # Parameters reach from the entry block.
        if self._param_defs:
            entry = cfg.entry_id
            gen[entry] = gen[entry] | frozenset(
                index
                for name, index in self._param_defs.items()
                if not any(
                    self._defs[i].name == name for i in gen[entry]
                )
            )
        self.block_in, self.block_out = solve_forward(cfg, gen, kill)

    def definition(self, index: int) -> Definition:
        return self._defs[index]

    def reaching_at(self, block_id: int, stmt: ast.stmt) -> "dict[str, list[Definition]]":
        """Definitions live immediately *before* ``stmt`` in ``block_id``."""
        alive: set[int] = set(self.block_in.get(block_id, frozenset()))
        if block_id == self.cfg.entry_id:
            # Parameters are live from function entry; the replay below
            # kills them at their first shadowing assignment.
            alive |= set(self._param_defs.values())
        for candidate, indices in self._block_defs.get(block_id, []):
            if candidate is stmt:
                break
            for index in indices:
                name = self._defs[index].name
                alive -= set(self._by_name.get(name, frozenset()))
                alive.add(index)
        result: dict[str, list[Definition]] = {}
        for index in alive:
            definition = self._defs[index]
            result.setdefault(definition.name, []).append(definition)
        return result

    def definitions_of(self, name: str) -> "list[Definition]":
        return [self._defs[i] for i in sorted(self._by_name.get(name, frozenset()))]

    def indices_for(self, block_id: int, stmt: ast.stmt) -> "list[int]":
        """Definition indices produced directly by ``stmt``."""
        for candidate, indices in self._block_defs.get(block_id, []):
            if candidate is stmt:
                return indices
        return []

    def iter_statements(self) -> "list[tuple[int, ast.stmt]]":
        """(block_id, statement) pairs in block order."""
        rows: list[tuple[int, ast.stmt]] = []
        for block_id in sorted(self._block_defs):
            for stmt, _indices in self._block_defs[block_id]:
                rows.append((block_id, stmt))
        return rows
