"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` is one parsed module plus the bookkeeping the
rules need: the inferred dotted module name (so scoped rules know
whether they apply), child→parent AST links, the import tracker, and
the two comment conventions — ``# repro: noqa[...]`` suppressions and
``# order: ...`` determinism annotations.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .imports import ImportTracker

#: ``# repro: noqa`` or ``# repro: noqa[DET001,API001]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?", re.IGNORECASE
)

#: ``# order: <free-text reason this iteration is order-safe>``.
_ORDER_RE = re.compile(r"#\s*order\s*:", re.IGNORECASE)


def infer_module_name(path: "str | Path") -> str:
    """Dotted module name inferred from package layout on disk.

    Walks up from the file through directories that contain an
    ``__init__.py``; ``src/repro/core/pipeline.py`` becomes
    ``repro.core.pipeline`` no matter which directory the analyzer was
    pointed at.  A file outside any package is just its stem.
    """
    file_path = Path(path).resolve()
    parts: list[str] = []
    if file_path.stem != "__init__":
        parts.append(file_path.stem)
    directory = file_path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    return ".".join(reversed(parts))


class ModuleContext:
    """One module's source, AST, and rule-facing helpers."""

    def __init__(
        self,
        source: str,
        path: str = "<string>",
        module: str | None = None,
        is_package: bool | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        if module is None and path != "<string>":
            module = infer_module_name(path)
        self.module = module or ""
        if is_package is None:
            is_package = Path(path).name == "__init__.py"
        self.is_package = is_package
        self.tree = ast.parse(source, filename=path)
        self.imports = ImportTracker.from_module(
            self.tree, self.module, self.is_package
        )
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._noqa = self._collect_noqa()

    @classmethod
    def from_file(cls, path: "str | Path") -> "ModuleContext":
        file_path = Path(path)
        return cls(file_path.read_text(encoding="utf-8"), path=str(file_path))

    # -- AST navigation ----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> "list[ast.AST]":
        """Parents of ``node`` from nearest to the module root."""
        chain: list[ast.AST] = []
        current = self.parent(node)
        while current is not None:
            chain.append(current)
            current = self.parent(current)
        return chain

    def resolve(self, node: ast.AST) -> str | None:
        """Qualified name of a Name/Attribute chain via the imports."""
        return self.imports.resolve(node)

    # -- comment conventions -----------------------------------------------------

    def _collect_noqa(self) -> dict[int, frozenset[str] | None]:
        """Map line number → suppressed rule ids (None = all rules)."""
        table: dict[int, frozenset[str] | None] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[number] = None
            else:
                table[number] = frozenset(
                    rule.strip().upper() for rule in rules.split(",") if rule.strip()
                )
        return table

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when a ``# repro: noqa`` on ``line`` covers ``rule_id``."""
        if line not in self._noqa:
            return False
        rules = self._noqa[line]
        return rules is None or rule_id.upper() in rules

    def has_ordering_comment(self, line: int) -> bool:
        """True when ``line`` (or the line above) carries ``# order:``."""
        for number in (line, line - 1):
            if 1 <= number <= len(self.lines) and _ORDER_RE.search(
                self.lines[number - 1]
            ):
                return True
        return False
