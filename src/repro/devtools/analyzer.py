"""The analyzer: apply every in-scope rule to every module.

The analyzer is pure — it never imports the code under analysis, only
parses it — so it is safe to point at arbitrary trees (the CI job, the
test fixtures' temp packages, a contributor's work in progress).
"""

from __future__ import annotations

from pathlib import Path

from .context import ModuleContext
from .findings import Finding, Severity
from .rules import Rule, all_rules

#: Pseudo rule id attached to files the parser rejects.
PARSE_ERROR = "PARSE"


class Analyzer:
    """Runs a ruleset over source files, modules, or whole trees.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to the full registry.
    select / ignore:
        Optional rule-id whitelists/blacklists applied on top.
    """

    def __init__(
        self,
        rules: "list[Rule] | None" = None,
        select: "set[str] | None" = None,
        ignore: "set[str] | None" = None,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = {rule_id.upper() for rule_id in select}
            unknown = wanted - {rule.rule_id for rule in chosen}
            if unknown:
                raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
            chosen = [rule for rule in chosen if rule.rule_id in wanted]
        if ignore is not None:
            dropped = {rule_id.upper() for rule_id in ignore}
            chosen = [rule for rule in chosen if rule.rule_id not in dropped]
        self.rules = chosen

    # -- entry points ------------------------------------------------------------

    def analyze_paths(self, paths: "list[str | Path]") -> list[Finding]:
        """Analyze files and/or directory trees (``*.py``, sorted)."""
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        findings: list[Finding] = []
        for file_path in files:
            findings.extend(self.analyze_file(file_path))
        findings.sort(key=Finding.sort_key)
        return findings

    def analyze_file(self, path: "str | Path") -> list[Finding]:
        file_path = Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            return [self._parse_failure(str(file_path), 1, f"unreadable: {exc}")]
        return self.analyze_source(source, path=str(file_path))

    def analyze_source(
        self,
        source: str,
        path: str = "<string>",
        module: str | None = None,
    ) -> list[Finding]:
        """Analyze one module given as text.

        ``module`` overrides the dotted name inferred from the package
        layout on disk — rule scoping keys off it.
        """
        try:
            ctx = ModuleContext(source, path=path, module=module)
        except SyntaxError as exc:
            return [
                self._parse_failure(
                    path, exc.lineno or 1, f"syntax error: {exc.msg}"
                )
            ]
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(ctx.module):
                continue
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.line, finding.rule_id):
                    findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return findings

    @staticmethod
    def _parse_failure(path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=1,
            rule_id=PARSE_ERROR,
            severity=Severity.ERROR,
            message=message,
            hint="fix the file so it parses; analysis skipped it",
        )
