"""The analyzer: module rules per file, project rules per program.

The analyzer is pure — it never imports the code under analysis, only
parses it — so it is safe to point at arbitrary trees (the CI job, the
test fixtures' temp packages, a contributor's work in progress).

Execution has two tiers:

* **module rules** run per file and are cached per file content hash;
* **project rules** (``requires_project``) run once over a
  :class:`~repro.devtools.project.ProjectModel` built from every parsed
  module, and are cached under a whole-project hash — any edit anywhere
  invalidates them, which is exactly their soundness requirement.

``# repro: noqa[...]`` suppression applies to both tiers; project-rule
findings are mapped back to their module's context for the check.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path

from .cache import LintCache, engine_signature
from .context import ModuleContext
from .contracts import contracts_for
from .findings import Finding, Severity
from .project import ProjectModel
from .rules import Rule, all_rules, expand_rule_patterns

#: Pseudo rule id attached to files the parser rejects.
PARSE_ERROR = "PARSE"


@dataclass
class AnalysisStats:
    """Where an analyzer run spent its time."""

    files_total: int = 0
    files_reanalyzed: int = 0
    files_from_cache: int = 0
    project_from_cache: bool = False
    project_rules_ran: bool = False
    contracts_from_cache: bool = False
    duration_s: float = 0.0
    rule_seconds: dict[str, float] = field(default_factory=dict)
    rule_findings: dict[str, int] = field(default_factory=dict)

    def record(self, rule_id: str, seconds: float, findings: int) -> None:
        self.rule_seconds[rule_id] = self.rule_seconds.get(rule_id, 0.0) + seconds
        self.rule_findings[rule_id] = (
            self.rule_findings.get(rule_id, 0) + findings
        )

    def render(self) -> str:
        """Human-readable summary for ``repro lint --stats``."""
        lines = [
            f"files: {self.files_total} total, "
            f"{self.files_reanalyzed} analyzed, "
            f"{self.files_from_cache} from cache",
        ]
        if self.project_rules_ran:
            source = "cache" if self.project_from_cache else "fresh run"
            lines.append(f"project rules: {source}")
        for rule_id in sorted(
            self.rule_seconds, key=lambda r: -self.rule_seconds[r]
        ):
            lines.append(
                f"  {rule_id:<10} {self.rule_seconds[rule_id] * 1000:8.1f} ms"
                f"  {self.rule_findings.get(rule_id, 0):>4} finding(s)"
            )
        lines.append(f"total: {self.duration_s * 1000:.1f} ms")
        return "\n".join(lines)


class Analyzer:
    """Runs a ruleset over source files, modules, or whole trees.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to the full registry.
    select / ignore:
        Rule ids or fnmatch globs (``FLOW*``) applied on top; unknown
        ``select`` patterns raise :class:`ValueError`.
    """

    def __init__(
        self,
        rules: "list[Rule] | None" = None,
        select: "set[str] | None" = None,
        ignore: "set[str] | None" = None,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = expand_rule_patterns(
                {rule_id.upper() for rule_id in select}
            )
            chosen = [rule for rule in chosen if rule.rule_id in wanted]
        if ignore is not None:
            dropped = expand_rule_patterns(
                {rule_id.upper() for rule_id in ignore}, strict=False
            )
            chosen = [rule for rule in chosen if rule.rule_id not in dropped]
        self.rules = chosen
        self.module_rules = [r for r in chosen if not r.requires_project]
        self.project_rules = [r for r in chosen if r.requires_project]

    @property
    def signature(self) -> str:
        """Cache signature of this analyzer configuration."""
        return engine_signature([rule.rule_id for rule in self.rules])

    # -- entry points ------------------------------------------------------------

    def analyze_paths(
        self,
        paths: "list[str | Path]",
        cache: "LintCache | None" = None,
        stats: "AnalysisStats | None" = None,
        contracts_out: "dict | None" = None,
    ) -> list[Finding]:
        """Analyze files and/or directory trees (``*.py``, sorted).

        When ``contracts_out`` is a dict, it is filled in place with the
        extracted ``repro.contracts/1`` payload for the analyzed tree
        (served from the cache when the tree is unchanged).
        """
        stats = stats if stats is not None else AnalysisStats()
        started = time.perf_counter()
        findings: list[Finding] = []
        file_hashes: dict[str, str] = {}
        pending: list[tuple[str, int, str, str]] = []
        for file_path in self._collect(paths):
            key = str(file_path)
            try:
                raw = file_path.read_bytes()
                mtime_ns = file_path.stat().st_mtime_ns
            except OSError as exc:
                findings.append(
                    self._parse_failure(key, 1, f"unreadable: {exc}")
                )
                continue
            digest = hashlib.sha256(raw).hexdigest()
            file_hashes[key] = digest
            pending.append(
                (key, mtime_ns, digest, raw.decode("utf-8", errors="replace"))
            )
        stats.files_total = len(pending)
        project_hash = LintCache.project_hash(file_hashes)
        project_cached: "list[Finding] | None" = None
        if cache is not None and self.project_rules:
            project_cached = cache.lookup_project(project_hash)
        need_project_run = bool(self.project_rules) and project_cached is None
        contracts_cached: "dict | None" = None
        if cache is not None and contracts_out is not None:
            contracts_cached = cache.lookup_contracts(project_hash)
        need_contracts_run = contracts_out is not None and contracts_cached is None
        # Either project-wide consumer forces a full parse: cached
        # per-file findings alone cannot rebuild the ProjectModel.
        need_parse_all = need_project_run or need_contracts_run

        contexts: dict[str, ModuleContext] = {}
        for key, mtime_ns, digest, text in pending:
            cached = (
                cache.lookup_file(key, mtime_ns, digest)
                if cache is not None
                else None
            )
            if cached is not None and not need_parse_all:
                findings.extend(cached)
                stats.files_from_cache += 1
                continue
            try:
                ctx = ModuleContext(text, path=key)
            except SyntaxError as exc:
                if cached is not None:
                    findings.extend(cached)
                    stats.files_from_cache += 1
                else:
                    failure = [
                        self._parse_failure(
                            key, exc.lineno or 1, f"syntax error: {exc.msg}"
                        )
                    ]
                    if cache is not None:
                        cache.store_file(key, mtime_ns, digest, failure)
                    findings.extend(failure)
                    stats.files_reanalyzed += 1
                continue
            contexts[key] = ctx
            if cached is not None:
                findings.extend(cached)
                stats.files_from_cache += 1
                continue
            file_findings = self._run_module_rules(ctx, stats)
            if cache is not None:
                cache.store_file(key, mtime_ns, digest, file_findings)
            findings.extend(file_findings)
            stats.files_reanalyzed += 1

        project_model: "ProjectModel | None" = None
        if need_parse_all:
            project_model = ProjectModel(list(contexts.values()))

        if self.project_rules:
            stats.project_rules_ran = True
            if project_cached is not None:
                stats.project_from_cache = True
                findings.extend(project_cached)
            else:
                assert project_model is not None
                project_findings = self._run_project_rules(
                    project_model, contexts, stats
                )
                if cache is not None:
                    cache.store_project(project_hash, project_findings)
                findings.extend(project_findings)

        if contracts_out is not None:
            if contracts_cached is not None:
                stats.contracts_from_cache = True
                payload = contracts_cached
            else:
                assert project_model is not None
                payload = contracts_for(project_model).to_payload()
                if cache is not None:
                    cache.store_contracts(project_hash, payload)
            contracts_out.clear()
            contracts_out.update(payload)

        findings.sort(key=Finding.sort_key)
        stats.duration_s = time.perf_counter() - started
        return findings

    def analyze_file(self, path: "str | Path") -> list[Finding]:
        file_path = Path(path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            return [self._parse_failure(str(file_path), 1, f"unreadable: {exc}")]
        return self.analyze_source(source, path=str(file_path))

    def analyze_source(
        self,
        source: str,
        path: str = "<string>",
        module: str | None = None,
    ) -> list[Finding]:
        """Analyze one module given as text.

        ``module`` overrides the dotted name inferred from the package
        layout on disk — rule scoping keys off it.  Project rules run
        over a single-module project model, so cross-module edges are
        absent but same-module flow analysis works.
        """
        try:
            ctx = ModuleContext(source, path=path, module=module)
        except SyntaxError as exc:
            return [
                self._parse_failure(
                    path, exc.lineno or 1, f"syntax error: {exc.msg}"
                )
            ]
        stats = AnalysisStats()
        findings = self._run_module_rules(ctx, stats)
        if self.project_rules:
            findings.extend(
                self._run_project_rules(
                    ProjectModel([ctx]), {ctx.path: ctx}, stats
                )
            )
        findings.sort(key=Finding.sort_key)
        return findings

    # -- execution ---------------------------------------------------------------

    def _run_module_rules(
        self, ctx: ModuleContext, stats: AnalysisStats
    ) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.module_rules:
            if not rule.applies_to(ctx.module):
                continue
            rule_started = time.perf_counter()
            collected = [
                finding
                for finding in rule.check(ctx)
                if not ctx.is_suppressed(finding.line, finding.rule_id)
            ]
            stats.record(
                rule.rule_id,
                time.perf_counter() - rule_started,
                len(collected),
            )
            findings.extend(collected)
        findings.sort(key=Finding.sort_key)
        return findings

    def _run_project_rules(
        self,
        project: ProjectModel,
        contexts: "dict[str, ModuleContext]",
        stats: AnalysisStats,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.project_rules:
            rule_started = time.perf_counter()
            collected = []
            for finding in rule.check_project(project):
                ctx = contexts.get(finding.path)
                if ctx is not None and ctx.is_suppressed(
                    finding.line, finding.rule_id
                ):
                    continue
                collected.append(finding)
            stats.record(
                rule.rule_id,
                time.perf_counter() - rule_started,
                len(collected),
            )
            findings.extend(collected)
        findings.sort(key=Finding.sort_key)
        return findings

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _collect(paths: "list[str | Path]") -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return files

    @staticmethod
    def _parse_failure(path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=1,
            rule_id=PARSE_ERROR,
            severity=Severity.ERROR,
            message=message,
            hint="fix the file so it parses; analysis skipped it",
        )
