"""Finding records produced by the static analyzer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How serious a finding is; ordering is by blocking strength."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        """Accept ``"error"``/``"WARNING"``/an existing member."""
        if isinstance(value, Severity):
            return value
        try:
            return cls[value.strip().upper()]
        except KeyError:
            valid = ", ".join(member.name.lower() for member in cls)
            raise ValueError(
                f"unknown severity {value!r}; expected one of: {valid}"
            ) from None

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Fix:
    """A source-span replacement that repairs a finding.

    Lines are 1-based, columns 0-based (matching ``ast`` offsets); the
    span covers ``[start, end)`` in the original text.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    def to_dict(self) -> dict[str, object]:
        return {
            "start_line": self.start_line,
            "start_col": self.start_col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "replacement": self.replacement,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Fix":
        return cls(
            start_line=int(payload["start_line"]),  # type: ignore[arg-type]
            start_col=int(payload["start_col"]),  # type: ignore[arg-type]
            end_line=int(payload["end_line"]),  # type: ignore[arg-type]
            end_col=int(payload["end_col"]),  # type: ignore[arg-type]
            replacement=str(payload["replacement"]),
        )


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One hop of an interprocedural finding's explanation path.

    Interprocedural rules (ASYNC001, RACE002) report *where* the bad
    call chain starts, but the chain itself is what makes the finding
    believable; each step names one location along it.  Rendered as a
    SARIF ``codeFlow`` by :mod:`repro.devtools.sarif`.
    """

    path: str
    line: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "message": self.message}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TraceStep":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
        )


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""
    fix: "Fix | None" = None
    trace: "tuple[TraceStep, ...]" = ()

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (single line)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.label}] {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "hint": self.hint,
        }
        if self.fix is not None:
            payload["fix"] = self.fix.to_dict()
        if self.trace:
            payload["trace"] = [step.to_dict() for step in self.trace]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Finding":
        fix = payload.get("fix")
        trace = payload.get("trace")
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule_id=str(payload["rule_id"]),
            severity=Severity.parse(str(payload["severity"])),
            message=str(payload["message"]),
            hint=str(payload.get("hint", "")),
            fix=Fix.from_dict(fix) if isinstance(fix, dict) else None,
            trace=tuple(TraceStep.from_dict(step) for step in trace)
            if isinstance(trace, list)
            else (),
        )
