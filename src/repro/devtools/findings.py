"""Finding records produced by the static analyzer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How serious a finding is; ordering is by blocking strength."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        """Accept ``"error"``/``"WARNING"``/an existing member."""
        if isinstance(value, Severity):
            return value
        try:
            return cls[value.strip().upper()]
        except KeyError:
            valid = ", ".join(member.name.lower() for member in cls)
            raise ValueError(
                f"unknown severity {value!r}; expected one of: {valid}"
            ) from None

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (single line)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.label}] {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "hint": self.hint,
        }
