"""``python -m repro lint`` — the static-analysis CLI surface.

Exit codes: 0 when no finding reaches the ``--fail-on`` threshold,
1 when at least one does, 2 on bad usage (unknown rule patterns, an
unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analyzer import AnalysisStats, Analyzer
from .baseline import BaselineError, apply_baseline, load_baseline, write_baseline
from .cache import LintCache
from .findings import Severity
from .fixer import apply_fixes
from .reporting import render_json, render_text
from .rules import Rule, all_rules
from .sarif import render_sarif

#: Default location of the incremental result cache.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

_EXIT_CODES_EPILOG = """\
exit codes:
  0  no finding at or above --fail-on (or --fail-on never)
  1  at least one finding at or above --fail-on
  2  usage error (unknown rule id/pattern, unreadable baseline)
"""

def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.formatter_class = argparse.RawDescriptionHelpFormatter
    parser.epilog = _EXIT_CODES_EPILOG
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or globs to run "
        "(e.g. FLOW001 or 'FLOW*,DET*'; default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or globs to skip",
    )
    parser.add_argument(
        "--fail-on",
        default="warning",
        choices=["info", "warning", "error", "never"],
        help="lowest severity that fails the run (default: warning)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply available fixes (DET002: wrap iterables in sorted())",
    )
    parser.add_argument(
        "--fix-mode",
        default="sorted",
        choices=["sorted", "suppress"],
        help="fix strategy: machine fixes, or append "
        "'# repro: noqa[RULE]' suppressions (default: sorted)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="with --fix: print the unified diff instead of writing files",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule timing and cache statistics to stderr",
    )
    parser.add_argument(
        "--contracts-out",
        default=None,
        metavar="FILE",
        help="write the extracted contract database (repro.contracts/1) "
        "to FILE as deterministic JSON",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules (grouped by family) and exit",
    )


def _split_ids(raw: str | None) -> "set[str] | None":
    if raw is None:
        return None
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def _family(rule: Rule) -> str:
    prefix = rule.rule_id.rstrip("0123456789")
    return prefix or rule.rule_id


def list_rules() -> str:
    """Rules grouped by family, with scope and project/module kind.

    Family headers are data-driven: each family's description is the
    first nonempty :attr:`Rule.family_description` among its members
    (id order), so a new rule family registers its own group header.
    """
    by_family: dict[str, list[Rule]] = {}
    for rule in all_rules():
        by_family.setdefault(_family(rule), []).append(rule)
    lines = []
    for family in sorted(by_family):
        description = next(
            (r.family_description for r in by_family[family] if r.family_description),
            "",
        )
        header = f"{family} — {description}" if description else family
        lines.append(header)
        for rule in by_family[family]:
            scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
            kind = "project" if rule.requires_project else "module"
            lines.append(
                f"  {rule.rule_id:<10} [{rule.severity.label:<7}] ({kind}) "
                f"{rule.summary}  (scope: {scope})"
            )
    return "\n".join(lines)


def _render(args: argparse.Namespace, findings, analyzer: Analyzer) -> str:
    if args.output_format == "json":
        return render_json(findings)
    if args.output_format == "sarif":
        return render_sarif(findings, analyzer.rules)
    return render_text(findings)


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        analyzer = Analyzer(
            select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    cache: "LintCache | None" = None
    if not args.no_cache:
        cache = LintCache(args.cache_dir, analyzer.signature)
    stats = AnalysisStats()
    paths = list(args.paths)
    contracts_out: "dict | None" = {} if args.contracts_out else None
    findings = analyzer.analyze_paths(
        paths, cache=cache, stats=stats, contracts_out=contracts_out
    )
    if cache is not None:
        cache.save()
    if args.contracts_out and contracts_out is not None:
        Path(args.contracts_out).write_text(
            json.dumps(contracts_out, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.write_baseline:
        count = write_baseline(findings, args.write_baseline)
        print(
            f"baseline written: {args.write_baseline} "
            f"({count} fingerprint(s))"
        )
        return 0

    suppressed = 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, known)

    if args.fix:
        result = apply_fixes(findings, mode=args.fix_mode, dry_run=args.diff)
        if args.diff:
            if result.diff:
                print(result.diff, end="")
            print(f"would apply {result.summary()}", file=sys.stderr)
        else:
            print(f"applied {result.summary()}", file=sys.stderr)
            if result.changed_files:
                # Report the post-fix state: re-analyze (the cache
                # invalidates the rewritten files automatically).
                findings = analyzer.analyze_paths(paths, cache=cache)
                if args.baseline:
                    findings, suppressed = apply_baseline(findings, known)
                if cache is not None:
                    cache.save()

    report = _render(args, findings, analyzer)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    if suppressed:
        print(f"({suppressed} baselined finding(s) hidden)", file=sys.stderr)
    if args.stats:
        print(stats.render(), file=sys.stderr)

    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    blocking = [f for f in findings if f.severity >= threshold]
    return 1 if blocking else 0
