"""``python -m repro lint`` — the static-analysis CLI surface.

Exit codes: 0 when no finding reaches the ``--fail-on`` threshold,
1 when at least one does, 2 on bad usage (unknown rule ids).
"""

from __future__ import annotations

import argparse
import sys

from .analyzer import Analyzer
from .findings import Severity
from .reporting import render_json, render_text
from .rules import all_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--fail-on",
        default="warning",
        choices=["info", "warning", "error", "never"],
        help="lowest severity that fails the run (default: warning)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _split_ids(raw: str | None) -> "set[str] | None":
    if raw is None:
        return None
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def list_rules() -> str:
    """Human-readable table of every registered rule."""
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
        lines.append(
            f"{rule.rule_id:<10} [{rule.severity.label:<7}] "
            f"{rule.summary}  (scope: {scope})"
        )
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint command; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        analyzer = Analyzer(
            select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    findings = analyzer.analyze_paths(list(args.paths))
    if args.output_format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    blocking = [f for f in findings if f.severity >= threshold]
    return 1 if blocking else 0
