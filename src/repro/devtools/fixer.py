"""Apply fixes for findings: span edits or suppression comments.

Two modes:

``sorted`` (default)
    apply the machine-generated :class:`~repro.devtools.findings.Fix`
    attached to a finding — today that is DET002's
    ``iterable`` → ``sorted(iterable)`` rewrite.  Findings without an
    attached fix are left alone.
``suppress``
    append ``# repro: noqa[RULE,...]`` to each finding's line — the
    escape hatch for adopting a rule on code that is known-good for
    reasons the analyzer cannot see.

Edits are computed per file, bottom-up, so earlier spans never shift
later ones; overlapping fixes keep only the first (in source order) and
report the rest as skipped.  ``dry_run`` renders a unified diff instead
of writing anything.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, Fix

__all__ = ["FixResult", "apply_fixes", "fix_source"]


@dataclass
class FixResult:
    """What a fix pass did (or would do, under ``dry_run``)."""

    applied: int = 0
    skipped: int = 0
    changed_files: list[str] = field(default_factory=list)
    diff: str = ""

    def summary(self) -> str:
        files = len(self.changed_files)
        text = f"{self.applied} fix(es) in {files} file(s)"
        if self.skipped:
            text += f", {self.skipped} skipped"
        return text


def _line_starts(source: str) -> "list[int]":
    starts = [0]
    for index, char in enumerate(source):
        if char == "\n":
            starts.append(index + 1)
    return starts


def _span_offsets(source: str, fix: Fix) -> "tuple[int, int] | None":
    starts = _line_starts(source)
    if fix.start_line < 1 or fix.end_line > len(starts):
        return None
    begin = starts[fix.start_line - 1] + fix.start_col
    end = starts[fix.end_line - 1] + fix.end_col
    if begin > end or end > len(source):
        return None
    return begin, end


def fix_source(
    source: str, findings: "list[Finding]", mode: str = "sorted"
) -> "tuple[str, int, int]":
    """Apply fixes for one file's findings.

    Returns ``(new_source, applied, skipped)``; ``new_source`` equals
    ``source`` when nothing applied.
    """
    if mode == "suppress":
        return _suppress(source, findings)
    edits: list[tuple[int, int, str]] = []
    skipped = 0
    for finding in findings:
        if finding.fix is None:
            continue
        span = _span_offsets(source, finding.fix)
        if span is None:
            skipped += 1
            continue
        edits.append((span[0], span[1], finding.fix.replacement))
    edits.sort()
    chosen: list[tuple[int, int, str]] = []
    last_end = -1
    for begin, end, replacement in edits:
        if begin < last_end:
            skipped += 1  # overlaps an already-chosen edit
            continue
        chosen.append((begin, end, replacement))
        last_end = end
    for begin, end, replacement in reversed(chosen):
        source = source[:begin] + replacement + source[end:]
    return source, len(chosen), skipped


def _suppress(
    source: str, findings: "list[Finding]"
) -> "tuple[str, int, int]":
    lines = source.splitlines(keepends=True)
    by_line: dict[int, list[str]] = {}
    skipped = 0
    for finding in findings:
        if 1 <= finding.line <= len(lines):
            rules = by_line.setdefault(finding.line, [])
            if finding.rule_id not in rules:
                rules.append(finding.rule_id)
        else:
            skipped += 1
    applied = 0
    for number, rules in by_line.items():
        line = lines[number - 1]
        if "repro: noqa" in line:
            skipped += len(rules)
            continue
        stripped = line.rstrip("\n")
        newline = line[len(stripped):]
        lines[number - 1] = (
            f"{stripped}  # repro: noqa[{','.join(sorted(rules))}]{newline}"
        )
        applied += len(rules)
    return "".join(lines), applied, skipped


def apply_fixes(
    findings: "list[Finding]",
    mode: str = "sorted",
    dry_run: bool = False,
) -> FixResult:
    """Apply fixes grouped per file; see module docstring."""
    result = FixResult()
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    diffs: list[str] = []
    for path in sorted(by_path):
        file_path = Path(path)
        try:
            original = file_path.read_text(encoding="utf-8")
        except OSError:
            result.skipped += len(by_path[path])
            continue
        updated, applied, skipped = fix_source(original, by_path[path], mode)
        result.skipped += skipped
        if applied == 0 or updated == original:
            continue
        result.applied += applied
        result.changed_files.append(path)
        if dry_run:
            diffs.append(
                "".join(
                    difflib.unified_diff(
                        original.splitlines(keepends=True),
                        updated.splitlines(keepends=True),
                        fromfile=f"a/{path}",
                        tofile=f"b/{path}",
                    )
                )
            )
        else:
            file_path.write_text(updated, encoding="utf-8")
    result.diff = "".join(diffs)
    return result
