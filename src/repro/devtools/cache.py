"""Incremental result cache for the analyzer.

Whole-program analysis is much more expensive than the PR-3 per-file
pass, and most lint invocations re-analyze a tree where almost nothing
changed.  The cache keeps the warm path fast without ever risking a
stale finding:

* **per-file findings** are keyed by ``(mtime_ns, sha256)`` — the mtime
  is a cheap first filter, the content hash the actual identity, so a
  ``touch`` re-validates via the hash and an edit that keeps the mtime
  (rare but possible) is still caught;
* **project-rule findings** (call graph, taint) can be invalidated by a
  change *anywhere*, so they are keyed by a single hash over every
  file's content hash;
* the **contract database** (``repro.contracts/1``, extracted by
  :mod:`repro.devtools.contracts`) is project-wide state too, keyed by
  the same whole-tree hash;
* the whole cache is discarded when the **engine signature** changes —
  the signature covers an engine version stamp plus the exact ruleset
  the analyzer was built with, so toggling ``--select`` or upgrading
  the analyzer never replays findings computed under different rules.

The on-disk format is one JSON document, ``<dir>/cache.json`` under
``.repro-lint-cache/`` by default.  A corrupt or unreadable cache file
degrades to a cold run — never to an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .findings import Finding

__all__ = ["LintCache", "engine_signature", "ENGINE_VERSION"]

#: Bump when analysis semantics change in a way the ruleset id list
#: cannot capture (e.g. a rule's logic is rewritten under the same id).
#: "6": contract extraction added; the cache payload gained a
#: ``contracts`` section.
ENGINE_VERSION = "6"

#: Schema version of the cache file itself.
_CACHE_SCHEMA = 1


def engine_signature(rule_ids: "list[str]") -> str:
    """Signature of one analyzer configuration."""
    payload = f"{ENGINE_VERSION}|{','.join(sorted(rule_ids))}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """Findings cache under ``directory`` for one engine signature."""

    def __init__(self, directory: "str | Path", signature: str) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"
        self.signature = signature
        self._files: dict[str, dict] = {}
        self._project: "dict | None" = None
        self._contracts: "dict | None" = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("schema") != _CACHE_SCHEMA:
            return
        if payload.get("signature") != self.signature:
            return  # different ruleset/engine: start cold
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files
        project = payload.get("project")
        if isinstance(project, dict):
            self._project = project
        contracts = payload.get("contracts")
        if isinstance(contracts, dict):
            self._contracts = contracts

    # -- per-file results --------------------------------------------------------

    def lookup_file(
        self, path: str, mtime_ns: int, digest: str
    ) -> "list[Finding] | None":
        entry = self._files.get(path)
        if entry is None:
            return None
        if entry.get("sha256") != digest:
            return None
        if entry.get("mtime_ns") != mtime_ns:
            # Same content, new mtime (touch/checkout): refresh the
            # stamp so the next lookup short-circuits again.
            entry["mtime_ns"] = mtime_ns
            self._dirty = True
        try:
            return [Finding.from_dict(row) for row in entry.get("findings", [])]
        except (KeyError, ValueError, TypeError):
            return None

    def store_file(
        self, path: str, mtime_ns: int, digest: str, findings: "list[Finding]"
    ) -> None:
        self._files[path] = {
            "mtime_ns": mtime_ns,
            "sha256": digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- project-rule results ----------------------------------------------------

    @staticmethod
    def project_hash(file_hashes: "dict[str, str]") -> str:
        """One hash over every analyzed file's content hash."""
        joined = "\n".join(
            f"{path}:{digest}" for path, digest in sorted(file_hashes.items())
        )
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def lookup_project(self, project_hash: str) -> "list[Finding] | None":
        if self._project is None:
            return None
        if self._project.get("hash") != project_hash:
            return None
        try:
            return [
                Finding.from_dict(row) for row in self._project.get("findings", [])
            ]
        except (KeyError, ValueError, TypeError):
            return None

    def store_project(self, project_hash: str, findings: "list[Finding]") -> None:
        self._project = {
            "hash": project_hash,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- contract database -------------------------------------------------------

    def lookup_contracts(self, project_hash: str) -> "dict | None":
        """The cached ``repro.contracts/1`` payload for this tree state."""
        if self._contracts is None:
            return None
        if self._contracts.get("hash") != project_hash:
            return None
        payload = self._contracts.get("payload")
        return payload if isinstance(payload, dict) else None

    def store_contracts(self, project_hash: str, payload: dict) -> None:
        self._contracts = {"hash": project_hash, "payload": payload}
        self._dirty = True

    # -- persistence -------------------------------------------------------------

    def save(self) -> None:
        """Write the cache back if anything changed; best-effort."""
        if not self._dirty:
            return
        payload = {
            "schema": _CACHE_SCHEMA,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
            "contracts": self._contracts,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            return
        self._dirty = False
