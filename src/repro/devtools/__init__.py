"""repro.devtools — whole-program static analysis for project invariants.

PR 1 and PR 2 made promises that ordinary tests cannot economically
guard: parallel output is bit-for-bit identical to serial, worker
payloads are picklable, disabled observability is zero-cost, and cache
entries are immutable.  This package turns those invariants into an
AST-based lint pass — ``python -m repro lint`` — that runs as a
blocking CI job.  PR 4 grew it from a per-file matcher into a
whole-program flow-analysis engine: a project model with a cross-module
call graph, per-function control-flow graphs with reaching-definitions
data-flow, and a declarative taint framework the FLOW/RACE rules are
written against.

Layout
------
:mod:`~repro.devtools.findings`
    :class:`Severity`, the immutable :class:`Finding` record, and
    :class:`Fix` spans for ``--fix``.
:mod:`~repro.devtools.imports`
    Lightweight per-module import tracker used to resolve qualified
    names (``Span`` → ``repro.observability.tracing.Span``) without
    executing any code.
:mod:`~repro.devtools.context`
    :class:`ModuleContext`: one parsed module plus everything rules
    need — parent links, ``# repro: noqa[...]`` suppressions, and
    ``# order:`` determinism comments.
:mod:`~repro.devtools.project`
    :class:`ProjectModel`: symbol table and conservative call graph
    over the whole tree, parsed once.
:mod:`~repro.devtools.cfg` / :mod:`~repro.devtools.dataflow`
    Basic-block control-flow graphs and the reaching-definitions
    solver the flow rules run on.
:mod:`~repro.devtools.taint`
    Declarative source → sanitizer → sink propagation
    (:class:`TaintSpec`), one level inter-procedural via call-graph
    summaries.
:mod:`~repro.devtools.lifecycle`
    Path-sensitive must-close analysis: acquire/close/escape lattice
    over the CFG with exception edges (:class:`LifecycleAnalysis`).
:mod:`~repro.devtools.rules` / :mod:`~repro.devtools.flow_rules` /
:mod:`~repro.devtools.concurrency_rules` /
:mod:`~repro.devtools.contract_rules`
    The self-registering :class:`Rule` base class, the syntactic rules
    (DET001/PAR001/OBS001/CACHE001/API001), the flow rules
    (FLOW001/FLOW002/RACE001 and the data-flow DET002), the
    concurrency/lifecycle rules (ASYNC001-003/LEAK001/RACE002) built on
    the kind-aware call graph, and the contract drift rules
    (SQL001/SCHEMA001/OBS002/CFG002/CLI002).
:mod:`~repro.devtools.contracts`
    Static extraction of the program's declared contracts — SQL DDL
    and queries, versioned payload schemas, observability names,
    config fields, CLI flags — into the deterministic
    ``repro.contracts/1`` database the contract rules check.
:mod:`~repro.devtools.analyzer`
    :class:`Analyzer`: module rules per file, project rules per
    program, suppression filtering, timing stats.
:mod:`~repro.devtools.cache`
    Incremental result cache (mtime + content hash per file, one
    project hash for the whole-program tier).
:mod:`~repro.devtools.baseline`
    Baseline files: record existing findings once, fail only on new
    ones.
:mod:`~repro.devtools.fixer`
    ``--fix``: span rewrites (DET002 → ``sorted(...)``) and
    ``# repro: noqa`` suppression insertion.
:mod:`~repro.devtools.reporting` / :mod:`~repro.devtools.sarif`
    Text/JSON reporters and deterministic SARIF 2.1.0 output.
:mod:`~repro.devtools.cli`
    The ``python -m repro lint`` entry point.

Suppression syntax: a trailing ``# repro: noqa`` silences every rule on
that line; ``# repro: noqa[DET001,API001]`` silences just those rules.
DET002 additionally honours an explicit ordering comment — ``# order:
<why this iteration is order-safe>`` on the line or the line above.
"""

from __future__ import annotations

from .analyzer import AnalysisStats, Analyzer
from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import LintCache
from .cfg import CFG
from .context import ModuleContext
from .contracts import (
    CONTRACTS_SCHEMA,
    ProjectContracts,
    contracts_for,
    extract_contracts,
)
from .dataflow import ReachingDefinitions
from .findings import Finding, Fix, Severity, TraceStep
from .fixer import apply_fixes
from .imports import ImportTracker
from .lifecycle import LifecycleAnalysis, ResourceSpec
from .project import CallEdge, ProjectModel
from .reporting import render_json, render_text
from .rules import Rule, all_rules, expand_rule_patterns
from .sarif import render_sarif
from .taint import TaintEngine, TaintSpec

__all__ = [
    "AnalysisStats",
    "Analyzer",
    "CFG",
    "CONTRACTS_SCHEMA",
    "CallEdge",
    "Finding",
    "Fix",
    "ImportTracker",
    "LifecycleAnalysis",
    "LintCache",
    "ModuleContext",
    "ProjectContracts",
    "ProjectModel",
    "ReachingDefinitions",
    "ResourceSpec",
    "Rule",
    "Severity",
    "TaintEngine",
    "TaintSpec",
    "TraceStep",
    "all_rules",
    "apply_baseline",
    "apply_fixes",
    "contracts_for",
    "expand_rule_patterns",
    "extract_contracts",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
