"""repro.devtools — project-invariant static analysis.

PR 1 and PR 2 made promises that ordinary tests cannot economically
guard: parallel output is bit-for-bit identical to serial, worker
payloads are picklable, disabled observability is zero-cost, and cache
entries are immutable.  This package turns those invariants into an
AST-based lint pass — ``python -m repro lint`` — that runs as a
blocking CI job, so a stray ``time.time()`` or an unsorted ``set``
iteration in a core stage is caught before it silently breaks the
paper's byte-stable Shift/LLR results.

Layout
------
:mod:`~repro.devtools.findings`
    :class:`Severity` and the immutable :class:`Finding` record.
:mod:`~repro.devtools.imports`
    Lightweight per-module import tracker used to resolve qualified
    names (``Span`` → ``repro.observability.tracing.Span``) without
    executing any code.
:mod:`~repro.devtools.context`
    :class:`ModuleContext`: one parsed module plus everything rules
    need — parent links, ``# repro: noqa[...]`` suppressions, and
    ``# order:`` determinism comments.
:mod:`~repro.devtools.rules`
    The self-registering :class:`Rule` base class and the initial
    ruleset (DET001/DET002/PAR001/OBS001/CACHE001/API001).  A new rule
    is a ~30-line subclass; defining it registers it.
:mod:`~repro.devtools.analyzer`
    :class:`Analyzer`: walks files/trees, applies rules in scope, and
    filters suppressed findings.
:mod:`~repro.devtools.reporting`
    Text and JSON reporters.
:mod:`~repro.devtools.cli`
    The ``python -m repro lint`` entry point.

Suppression syntax: a trailing ``# repro: noqa`` silences every rule on
that line; ``# repro: noqa[DET001,API001]`` silences just those rules.
DET002 additionally honours an explicit ordering comment — ``# order:
<why this iteration is order-safe>`` on the line or the line above.
"""

from __future__ import annotations

from .analyzer import Analyzer
from .context import ModuleContext
from .findings import Finding, Severity
from .imports import ImportTracker
from .reporting import render_json, render_text
from .rules import Rule, all_rules

__all__ = [
    "Analyzer",
    "Finding",
    "ImportTracker",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "render_json",
    "render_text",
]
