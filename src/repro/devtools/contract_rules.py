"""Cross-layer contract drift rules (SQL/SCHEMA/OBS/CFG/CLI families).

These project-tier rules check both sides of every contract surface
harvested by :mod:`repro.devtools.contracts`:

========== =================================================================
rule       drift caught
========== =================================================================
SQL001     query references a table/column absent from the extracted DDL,
           ``INSERT`` placeholder arity mismatch, or ``SELECT *`` against a
           table owned by a versioned artifact module
SCHEMA001  payload key written under a schema id but never read by any
           consumer of that id, and vice versa
OBS002     metric/span name emitted in exactly one place with a
           near-duplicate elsewhere (edit distance ≤ 2, or a singleton
           prefix family shadowing an established one)
CFG002     config field defined but never read, or ``getattr`` read of a
           field no config class defines
CLI002     declared CLI flag whose dest is never consumed by any handler
========== =================================================================

Every finding carries a trace pointing at the other side of the broken
contract (the DDL, the reader/writer, the near-duplicate emit site), so
the SARIF output renders the drift as a code flow.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from typing import ClassVar

from .contracts import (
    DYNAMIC,
    ObsName,
    PayloadSite,
    ProjectContracts,
    SqlQuery,
    SqlTable,
    contracts_for,
)
from .findings import Finding, Severity, TraceStep
from .project import ProjectModel
from .rules import Rule

_TABLE_REF_RE = re.compile(
    r"\b(?:FROM|INTO|UPDATE|JOIN)\s+([A-Za-z_]\w*)", re.IGNORECASE
)
_ALIAS_RE = re.compile(
    r"\b(?:FROM|JOIN)\s+([A-Za-z_]\w*)\s+(?:AS\s+)?([A-Za-z_]\w*)",
    re.IGNORECASE,
)
_COLUMN_ALIAS_RE = re.compile(r"\bAS\s+([A-Za-z_]\w*)", re.IGNORECASE)
_IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)(\.[A-Za-z_]\w*)?")
_SELECT_STAR_RE = re.compile(r"\bSELECT\s+\*", re.IGNORECASE)
_STRING_LITERAL_RE = re.compile(r"'[^']*'")
_INSERT_RE = re.compile(
    r"\bINSERT\s+(?:OR\s+\w+\s+)?INTO\s+([A-Za-z_]\w*)\s*"
    r"(?:\(([^)]*)\))?\s*VALUES\s*\(([^)]*)\)",
    re.IGNORECASE | re.DOTALL,
)

#: SQL keywords and builtins that the identifier scan must not mistake
#: for column references.
_SQL_KEYWORDS = frozenset(
    """
    abort action add after all alter analyze and as asc attach autoincrement
    before begin between by cascade case cast check collate column commit
    conflict constraint create cross current current_date current_time
    current_timestamp database default deferrable deferred delete desc detach
    distinct do drop each else end escape except exclude exclusive exists
    explain fail filter first following for foreign from full glob group
    groups having if ignore immediate in index indexed initially inner insert
    instead intersect into is isnull join key last left like limit match
    natural no not nothing notnull null nulls of offset on or order others
    outer over partition plan pragma preceding primary query raise range
    recursive references regexp reindex release rename replace restrict right
    rollback row rows savepoint select set table temp temporary then ties to
    transaction trigger unbounded union unique update using vacuum values
    view virtual when where window with without
    blob integer real text numeric boolean
    true false
    """.split()
)

#: Pseudo-tables/columns SQLite provides implicitly.
_IMPLICIT_TABLES = frozenset({"sqlite_master", "sqlite_sequence"})
_IMPLICIT_COLUMNS = frozenset({"rowid", "oid"})


def _trace(steps: Iterable[tuple[str, int, str]]) -> tuple[TraceStep, ...]:
    return tuple(TraceStep(path=path, line=line, message=message)
                 for path, line, message in steps)


class _ContractRule(Rule):
    """Shared plumbing for rules driven by :func:`contracts_for`.

    Not registered itself (empty ``rule_id``); concrete subclasses set
    one and self-register through ``Rule.__init_subclass__``.
    """

    requires_project: ClassVar[bool] = True

    def check(self, ctx) -> Iterator[Finding]:  # pragma: no cover - project tier
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        yield from self.check_contracts(contracts_for(project))

    def check_contracts(
        self, contracts: ProjectContracts
    ) -> Iterator[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def make_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        trace: tuple[TraceStep, ...] = (),
        hint: str | None = None,
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            hint=hint if hint is not None else self.hint,
            trace=trace,
        )


class SqlContractRule(_ContractRule):
    """SQL001 — queries must agree with the extracted DDL."""

    rule_id: ClassVar[str] = "SQL001"
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = (
        "SQL query drifts from the declared DDL (unknown table/column, "
        "INSERT arity mismatch, or SELECT * against a versioned artifact)"
    )
    hint: ClassVar[str] = (
        "reconcile the query with the CREATE TABLE statement it targets; "
        "name columns explicitly when the table backs a versioned schema"
    )
    family_description: ClassVar[str] = "SQL/DDL contract integrity"

    def check_contracts(self, contracts: ProjectContracts) -> Iterator[Finding]:
        if not contracts.tables:
            return
        by_name = contracts.tables_by_name()
        for query in contracts.queries:
            yield from self._check_query(contracts, by_name, query)

    def _check_query(
        self,
        contracts: ProjectContracts,
        by_name: dict[str, list[SqlTable]],
        query: SqlQuery,
    ) -> Iterator[Finding]:
        sql = _STRING_LITERAL_RE.sub("''", query.sql)
        if re.match(r"\s*(PRAGMA|ATTACH|DETACH|VACUUM)\b", sql, re.IGNORECASE):
            return
        local = contracts.tables_in(query.module)
        # ``DO UPDATE SET`` makes the ref regex capture the keyword
        # after UPDATE; keywords are never table names.
        refs = [
            name
            for name in dict.fromkeys(_TABLE_REF_RE.findall(sql))
            if name.lower() not in _SQL_KEYWORDS
        ]
        resolved: dict[str, SqlTable | None] = {}
        for name in refs:
            if name.lower() in _IMPLICIT_TABLES or name == DYNAMIC:
                resolved[name] = None  # wildcard: columns unknown, no checks
            elif name in local:
                resolved[name] = local[name]
            elif name in by_name:
                resolved[name] = by_name[name][0]
            else:
                declared = sorted(local) or sorted(by_name)
                yield self.make_finding(
                    query.path,
                    query.line,
                    query.col,
                    f"query references table {name!r} which no CREATE TABLE "
                    "statement in the project declares",
                    trace=_trace(
                        (t.path, t.line, f"declared table {t.name!r}")
                        for t in sorted(
                            contracts.tables, key=lambda t: (t.path, t.line)
                        )[:3]
                    ),
                    hint=f"declared tables: {', '.join(declared[:8])}",
                )
        yield from self._check_select_star(contracts, query, sql, resolved)
        yield from self._check_insert_arity(query, sql, resolved)
        yield from self._check_columns(query, sql, resolved)

    def _check_select_star(
        self,
        contracts: ProjectContracts,
        query: SqlQuery,
        sql: str,
        resolved: dict[str, SqlTable | None],
    ) -> Iterator[Finding]:
        if not _SELECT_STAR_RE.search(sql):
            return
        for table in resolved.values():
            if table is not None and table.module in contracts.versioned_modules:
                yield self.make_finding(
                    query.path,
                    query.line,
                    query.col,
                    f"SELECT * against table {table.name!r} owned by versioned "
                    f"artifact module {table.module!r}; a schema bump silently "
                    "changes this query's row shape",
                    trace=_trace(
                        [(table.path, table.line, f"table {table.name!r} declared here")]
                    ),
                    hint="name the columns explicitly so schema drift fails loudly",
                )

    def _check_insert_arity(
        self,
        query: SqlQuery,
        sql: str,
        resolved: dict[str, SqlTable | None],
    ) -> Iterator[Finding]:
        for match in _INSERT_RE.finditer(sql):
            table = resolved.get(match.group(1))
            if table is None:
                continue
            column_list = match.group(2)
            values = match.group(3)
            if set(values.replace("?", "").replace(",", "").split()) - {""}:
                continue  # expressions, not a pure placeholder tuple
            placeholders = values.count("?")
            if column_list:
                names = [c.strip() for c in column_list.split(",") if c.strip()]
                for name in names:
                    if name not in table.columns and name.lower() not in _IMPLICIT_COLUMNS:
                        yield self._column_finding(query, name, table)
                expected = len(names)
            else:
                expected = len(table.columns)
            if placeholders and placeholders != expected:
                yield self.make_finding(
                    query.path,
                    query.line,
                    query.col,
                    f"INSERT into {table.name!r} binds {placeholders} "
                    f"placeholder(s) but the target column list has {expected}",
                    trace=_trace(
                        [(table.path, table.line, f"table {table.name!r} declared here")]
                    ),
                )

    def _check_columns(
        self,
        query: SqlQuery,
        sql: str,
        resolved: dict[str, SqlTable | None],
    ) -> Iterator[Finding]:
        tables = [t for t in resolved.values() if t is not None]
        if not tables or any(t is None for t in resolved.values()):
            # An unknown or wildcard table makes column membership
            # undecidable; stay silent rather than guess.
            return
        if DYNAMIC in sql:
            return
        aliases: dict[str, SqlTable] = {}
        for match in _ALIAS_RE.finditer(sql):
            table_name, alias = match.group(1), match.group(2)
            if alias.lower() in _SQL_KEYWORDS:
                continue
            table = resolved.get(table_name)
            if table is not None:
                aliases[alias] = table
        column_aliases = {
            m.group(1)
            for m in _COLUMN_ALIAS_RE.finditer(sql)
            if m.group(1).lower() not in _SQL_KEYWORDS
        }
        known_columns = set(_IMPLICIT_COLUMNS) | column_aliases
        for table in tables:
            known_columns.update(table.columns)
        known_names = set(resolved) | set(aliases) | {"excluded"}
        for match in _IDENT_RE.finditer(sql):
            token, dotted = match.group(1), match.group(2)
            rest = sql[match.end() :].lstrip()
            if rest.startswith("("):
                continue  # function call
            if dotted:
                qualifier, column = token, dotted[1:]
                owner = aliases.get(qualifier) or resolved.get(qualifier)
                if qualifier == "excluded":
                    insert = _INSERT_RE.search(sql)
                    owner = resolved.get(insert.group(1)) if insert else None
                if owner is None:
                    continue
                if (
                    column not in owner.columns
                    and column.lower() not in _IMPLICIT_COLUMNS
                ):
                    yield self._column_finding(query, column, owner)
                continue
            lowered = token.lower()
            if (
                lowered in _SQL_KEYWORDS
                or token in known_columns
                or token in known_names
            ):
                continue
            yield self._column_finding(query, token, tables[0], tables)

    def _column_finding(
        self,
        query: SqlQuery,
        column: str,
        table: SqlTable,
        tables: "list[SqlTable] | None" = None,
    ) -> Finding:
        scope = tables or [table]
        declared = sorted({c for t in scope for c in t.columns})
        return self.make_finding(
            query.path,
            query.line,
            query.col,
            f"query references column {column!r} which the declared DDL for "
            f"{'/'.join(sorted({t.name for t in scope}))!s} does not define",
            trace=_trace(
                (t.path, t.line, f"table {t.name!r}: columns {', '.join(t.columns)}")
                for t in scope
            ),
            hint=f"declared columns: {', '.join(declared)}",
        )


class SchemaKeyDriftRule(_ContractRule):
    """SCHEMA001 — writer/reader key sets of a schema id must agree."""

    rule_id: ClassVar[str] = "SCHEMA001"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = (
        "payload key written under a versioned schema id but never read by "
        "any consumer of that id (or read but never written)"
    )
    hint: ClassVar[str] = (
        "either consume the key in a reader of this schema id or stop "
        "emitting it; dead keys hide real drift"
    )
    family_description: ClassVar[str] = "versioned payload schema agreement"

    def check_contracts(self, contracts: ProjectContracts) -> Iterator[Finding]:
        writers: dict[str, list[PayloadSite]] = {}
        readers: dict[str, list[PayloadSite]] = {}
        for site in contracts.payload_sites:
            bucket = writers if site.role == "writer" else readers
            bucket.setdefault(site.schema_id, []).append(site)
        for schema_id in sorted(set(writers) & set(readers)):
            yield from self._check_schema(
                contracts, schema_id, writers[schema_id], readers[schema_id]
            )

    def _check_schema(
        self,
        contracts: ProjectContracts,
        schema_id: str,
        writers: list[PayloadSite],
        readers: list[PayloadSite],
    ) -> Iterator[Finding]:
        written = {key for w in writers for key in w.keys}
        read_local = {key for r in readers for key in r.keys}
        # Written-but-never-read uses *broad* evidence: any constant key
        # read anywhere in a reader's module counts, so helpers the
        # reader delegates to (attribute loads, membership tuples) keep
        # a key alive.
        broad_read = set(read_local)
        for site in readers:
            broad_read |= contracts.module_read_keys.get(site.module, frozenset())
        for key in sorted(written - broad_read - {"schema"}):
            site = next(w for w in writers if key in w.keys)
            yield self.make_finding(
                site.path,
                site.line,
                1,
                f"payload key {key!r} is written under schema {schema_id!r} "
                f"in {site.function}() but no reader of that schema ever "
                "consumes it",
                trace=_trace(
                    (r.path, r.line, f"reader {r.function}() of {schema_id!r}")
                    for r in readers
                ),
            )
        for key in sorted(read_local - written - {"schema"}):
            site = next(r for r in readers if key in r.keys)
            yield self.make_finding(
                site.path,
                site.line,
                1,
                f"reader {site.function}() of schema {schema_id!r} consumes "
                f"key {key!r} which no writer of that schema emits",
                trace=_trace(
                    (w.path, w.line, f"writer {w.function}() of {schema_id!r}")
                    for w in writers
                ),
            )


class ObsNameDriftRule(_ContractRule):
    """OBS002 — singleton metric/span names near an established name."""

    rule_id: ClassVar[str] = "OBS002"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = (
        "metric/span name emitted in exactly one place with a near-duplicate "
        "elsewhere (likely typo drift splitting one series in two)"
    )
    hint: ClassVar[str] = (
        "move the name into repro.observability.names and emit the shared "
        "constant from both sites"
    )
    family_description: ClassVar[str] = "observability name hygiene"

    #: Maximum edit distance treated as a near-duplicate.
    max_distance: ClassVar[int] = 2

    def check_contracts(self, contracts: ProjectContracts) -> Iterator[Finding]:
        sites: dict[tuple[str, str], list[ObsName]] = {}
        for name in contracts.obs_names:
            if name.kind == "log" or name.dynamic:
                continue
            sites.setdefault((name.kind, name.name), []).append(name)
        for (kind, value), emits in sorted(sites.items()):
            if len(emits) != 1:
                continue
            site = emits[0]
            if site.declared or value in contracts.declared_obs_values:
                continue
            yield from self._check_singleton(kind, value, site, sites)

    def _check_singleton(
        self,
        kind: str,
        value: str,
        site: ObsName,
        sites: dict[tuple[str, str], list[ObsName]],
    ) -> Iterator[Finding]:
        peers = {
            name: emits
            for (peer_kind, name), emits in sites.items()
            if peer_kind == kind and name != value
        }
        near = sorted(
            name
            for name in peers
            if _levenshtein(value, name, self.max_distance) <= self.max_distance
        )
        if near:
            yield self.make_finding(
                site.path,
                site.line,
                site.col,
                f"{kind} name {value!r} is emitted exactly once and is within "
                f"edit distance {self.max_distance} of {near[0]!r}; the two "
                "series look like one name with a typo",
                trace=_trace(
                    (emit.path, emit.line, f"{kind} {name!r} emitted here")
                    for name in near
                    for emit in peers[name]
                ),
            )
            return
        family = _name_family(value)
        families: dict[str, set[str]] = {}
        for name in peers:
            families.setdefault(_name_family(name), set()).add(name)
        if family in families:
            return  # established family: singleton members are fine
        for peer_family, members in sorted(families.items()):
            if (
                len(members) >= 2
                and _levenshtein(family, peer_family, self.max_distance)
                <= self.max_distance
            ):
                yield self.make_finding(
                    site.path,
                    site.line,
                    site.col,
                    f"{kind} name {value!r} starts a one-member family "
                    f"{family!r} next to established family {peer_family!r} "
                    f"({len(members)} names); the prefix looks misspelled",
                    trace=_trace(
                        (emit.path, emit.line, f"{kind} {name!r} emitted here")
                        for name in sorted(members)[:3]
                        for emit in peers[name]
                    ),
                )
                return


class ConfigFieldDriftRule(_ContractRule):
    """CFG002 — config fields must be read; getattr reads must exist."""

    rule_id: ClassVar[str] = "CFG002"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = (
        "config field defined but never read, or getattr() config read of a "
        "field no config class defines"
    )
    hint: ClassVar[str] = (
        "delete the dead field or wire it into the code path it was meant "
        "to control"
    )
    family_description: ClassVar[str] = "config field liveness"

    def check_contracts(self, contracts: ProjectContracts) -> Iterator[Finding]:
        classes = {c.cls: c for c in contracts.config_classes}
        for config_field in contracts.config_fields:
            if config_field.name in contracts.attribute_reads:
                continue
            owner = classes.get(config_field.cls)
            trace = ()
            if owner is not None:
                trace = _trace(
                    [(owner.path, owner.line, f"class {owner.cls} defined here")]
                )
            yield self.make_finding(
                config_field.path,
                config_field.line,
                1,
                f"config field {config_field.cls}.{config_field.name} is "
                "defined but never read anywhere in the project",
                trace=trace,
            )
        defined = {f.name for f in contracts.config_fields}
        if not defined:
            return
        for read in contracts.config_getattrs:
            if read.name in defined:
                continue
            yield self.make_finding(
                read.path,
                read.line,
                read.col,
                f"getattr() reads config field {read.name!r} which no "
                "*Config dataclass defines",
                trace=_trace(
                    (c.path, c.line, f"class {c.cls} defined here")
                    for c in contracts.config_classes
                ),
                hint="fix the field name or add the field to the config class",
            )


class CliFlagDriftRule(_ContractRule):
    """CLI002 — every declared CLI flag's dest must be consumed."""

    rule_id: ClassVar[str] = "CLI002"
    severity: ClassVar[Severity] = Severity.WARNING
    summary: ClassVar[str] = (
        "CLI flag declared via add_argument but its dest is never consumed "
        "by any handler"
    )
    hint: ClassVar[str] = (
        "read args.<dest> in the handler or delete the flag; accepted-but-"
        "ignored options mislead users"
    )
    family_description: ClassVar[str] = "CLI flag consumption"

    def check_contracts(self, contracts: ProjectContracts) -> Iterator[Finding]:
        if contracts.cli_consumes_all or not contracts.cli_flags:
            return
        for flag in contracts.cli_flags:
            if flag.dest in contracts.cli_consumed:
                continue
            if flag.dest in contracts.attribute_reads:
                # Read through a receiver we don't model (e.g. a config
                # object hydrated from the namespace) — give the benefit
                # of the doubt.
                continue
            yield self.make_finding(
                flag.path,
                flag.line,
                flag.col,
                f"CLI flag {flag.option!r} stores into dest {flag.dest!r} "
                "but no handler ever reads it",
                trace=_trace(
                    [
                        (
                            flag.path,
                            flag.line,
                            f"flag declared here; no args.{flag.dest} read "
                            "anywhere in the project",
                        )
                    ]
                ),
            )


def _levenshtein(a: str, b: str, cap: int) -> int:
    """Edit distance between ``a`` and ``b``, short-circuited at ``cap+1``."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        best = i
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            best = min(best, value)
        if best > cap:
            return cap + 1
        previous = current
    return previous[-1]


def _name_family(name: str) -> str:
    """The leading segment of a dotted/colon-separated emit name."""
    for separator in (":", "."):
        if separator in name:
            return name.split(separator, 1)[0]
    return name
