"""Taint propagation: declarative source → sanitizer → sink rules.

A :class:`TaintSpec` names three pattern sets:

* **sources** — calls whose result is suspect (a raw external-resource
  response, an unordered collection, ...);
* **sanitizers** — calls that clean a suspect value
  (``validate_context_terms``, ``sorted`` for ordering taint);
* **sinks** — calls a suspect value must never reach unclean
  (``PersistentResourceCache.put``, store writes).

Patterns come in two forms:

``attr:name``
    matches any attribute call ``<expr>.name(...)`` — used when the
    receiver's type cannot be resolved statically (``self._persistent``
    is just an attribute to the AST);
``glob``
    an :mod:`fnmatch` glob matched against the call's *resolved*
    qualified name (module-local symbols and import bindings via the
    project model), e.g. ``repro.resources.base.validate_context_terms``
    or ``*.frequent_snippet_terms``.

The engine runs a forward abstract interpretation over each function's
CFG: the state maps local names to the source label that tainted them.
Taint propagates through assignments, containers (``tuple``/``list``/
``sorted``/comprehensions), attribute/subscript access, and **calls to
project functions whose summaries say their return value is tainted**
(one level inter-procedural via the call graph; summaries are memoized
and computed on demand).  Unknown calls drop taint — the engine prefers
false negatives over drowning the tree in speculative findings; code
review still exists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase

from .cfg import CFG
from .context import ModuleContext
from .dataflow import pruned_walk, shallow_expressions
from .project import FunctionInfo, ProjectModel

__all__ = ["TaintSpec", "TaintHit", "TaintEngine", "matches_pattern"]

#: Builtins that return a rearrangement of their (first) argument — they
#: carry taint through instead of cleaning it.
_PROPAGATING_BUILTINS = frozenset(
    {"tuple", "list", "set", "frozenset", "sorted", "reversed", "iter", "filter"}
)


@dataclass(frozen=True)
class TaintSpec:
    """One taint rule's patterns (see module docstring for syntax)."""

    sources: tuple[str, ...]
    sanitizers: tuple[str, ...]
    sinks: tuple[str, ...]


@dataclass(frozen=True)
class TaintHit:
    """A tainted value reaching a sink."""

    function: str
    node: ast.Call
    sink: str
    source_label: str

    @property
    def line(self) -> int:
        return self.node.lineno


def matches_pattern(
    call: ast.Call,
    patterns: "tuple[str, ...]",
    project: ProjectModel,
    ctx: ModuleContext,
) -> "str | None":
    """The first pattern ``call`` matches, or None."""
    func = call.func
    attr = func.attr if isinstance(func, ast.Attribute) else None
    qualified: "str | None | bool" = False  # False = not yet resolved
    for pattern in patterns:
        if pattern.startswith("attr:"):
            if attr is not None and attr == pattern[5:]:
                return pattern
            continue
        if qualified is False:
            qualified = project.resolve_symbol(ctx, func)
        if qualified is not None and fnmatchcase(str(qualified), pattern):
            return pattern
    return None


class _FunctionTaint:
    """Abstract interpretation of one function under one spec."""

    def __init__(
        self,
        engine: "TaintEngine",
        info: FunctionInfo,
    ) -> None:
        self.engine = engine
        self.info = info
        self.ctx = engine.project.context_for(info)
        self.cfg = CFG.from_function(info.node)
        self.hits: list[TaintHit] = []
        self.returns_tainted = False
        self._run()

    # -- fixed point -------------------------------------------------------------

    def _run(self) -> None:
        order = self.cfg.reverse_postorder()
        block_out: dict[int, dict[str, str]] = {b: {} for b in self.cfg.blocks}
        changed = True
        while changed:
            changed = False
            for block_id in order:
                env = self._merged_in(block_id, block_out)
                for stmt in self.cfg.blocks[block_id].statements:
                    self._transfer(stmt, env, collect=False)
                if env != block_out[block_id]:
                    block_out[block_id] = dict(env)
                    changed = True
        # Final collection pass with stable in-states.
        for block_id in order:
            env = self._merged_in(block_id, block_out)
            for stmt in self.cfg.blocks[block_id].statements:
                self._transfer(stmt, env, collect=True)

    def _merged_in(
        self, block_id: int, block_out: dict[int, dict[str, str]]
    ) -> dict[str, str]:
        env: dict[str, str] = {}
        for pred in self.cfg.blocks[block_id].predecessors:
            for name, label in block_out[pred].items():
                if name not in env or label < env[name]:
                    env[name] = label
        return env

    # -- transfer function -------------------------------------------------------

    def _transfer(
        self, stmt: ast.stmt, env: dict[str, str], collect: bool
    ) -> None:
        if collect:
            self._check_sinks(stmt, env)
        if isinstance(stmt, ast.Assign):
            label = self._expr_label(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, label, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._expr_label(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            label = self._expr_label(stmt.value, env)
            if label is not None:
                self._bind(stmt.target, label, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Iterating a tainted collection yields tainted elements.
            self._bind(stmt.target, self._expr_label(stmt.iter, env), env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self._expr_label(item.context_expr, env),
                        env,
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self._expr_label(stmt.value, env):
                self.returns_tainted = True
        # Walrus assignments inside any expression of this statement.
        for root in shallow_expressions(stmt):
            for node in pruned_walk(root):
                if isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name
                ):
                    label = self._expr_label(node.value, env)
                    if label is not None:
                        env[node.target.id] = label
                    else:
                        env.pop(node.target.id, None)

    def _bind(
        self, target: ast.expr, label: "str | None", env: dict[str, str]
    ) -> None:
        if isinstance(target, ast.Name):
            if label is not None:
                env[target.id] = label
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, label, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, label, env)
        # attribute/subscript stores don't bind locals

    # -- expression labelling ----------------------------------------------------

    def _expr_label(self, node: "ast.expr | None", env: dict[str, str]) -> "str | None":
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_label(node, env)
        if isinstance(node, ast.Attribute):
            return self._expr_label(node.value, env)
        if isinstance(node, ast.Subscript):
            return self._expr_label(node.value, env)
        if isinstance(node, ast.Starred):
            return self._expr_label(node.value, env)
        if isinstance(node, ast.Await):
            return self._expr_label(node.value, env)
        if isinstance(node, ast.BinOp):
            return self._expr_label(node.left, env) or self._expr_label(
                node.right, env
            )
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                label = self._expr_label(value, env)
                if label is not None:
                    return label
            return None
        if isinstance(node, ast.IfExp):
            return self._expr_label(node.body, env) or self._expr_label(
                node.orelse, env
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                label = self._expr_label(element, env)
                if label is not None:
                    return label
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                label = self._expr_label(generator.iter, env)
                if label is not None:
                    return label
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    label = self._expr_label(value.value, env)
                    if label is not None:
                        return label
            return None
        return None

    def _call_label(self, call: ast.Call, env: dict[str, str]) -> "str | None":
        spec = self.engine.spec
        project = self.engine.project
        if matches_pattern(call, spec.sanitizers, project, self.ctx) is not None:
            return None
        source = matches_pattern(call, spec.sources, project, self.ctx)
        if source is not None:
            try:
                rendered = ast.unparse(call.func)
            except Exception:  # pragma: no cover
                rendered = source
            return f"{rendered}() at line {call.lineno}"
        # Taint-through builtins: tuple(x), sorted(x), ...
        func = call.func
        if isinstance(func, ast.Name) and func.id in _PROPAGATING_BUILTINS:
            for arg in call.args:
                label = self._expr_label(arg, env)
                if label is not None:
                    return label
            return None
        # One level inter-procedural: a project callee whose return
        # value is tainted taints this call site.
        callee = project.resolve_call(self.info, call)
        if callee is not None and self.engine.returns_tainted(callee.qualname):
            return f"{callee.qualname}() (returns a tainted value)"
        return None

    # -- sinks -------------------------------------------------------------------

    def _check_sinks(self, stmt: ast.stmt, env: dict[str, str]) -> None:
        for node in self._shallow_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            sink = matches_pattern(
                node, self.engine.spec.sinks, self.engine.project, self.ctx
            )
            if sink is None:
                continue
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                label = self._expr_label(arg, env)
                if label is not None:
                    self.hits.append(
                        TaintHit(
                            function=self.info.qualname,
                            node=node,
                            sink=sink,
                            source_label=label,
                        )
                    )
                    break

    @staticmethod
    def _shallow_nodes(stmt: ast.stmt):
        for root in shallow_expressions(stmt):
            yield from pruned_walk(root)


class TaintEngine:
    """Runs one :class:`TaintSpec` over project functions."""

    def __init__(self, project: ProjectModel, spec: TaintSpec) -> None:
        self.project = project
        self.spec = spec
        self._summaries: dict[str, bool] = {}
        self._in_progress: set[str] = set()
        self._analyses: dict[str, _FunctionTaint] = {}

    def analyze_function(self, info: FunctionInfo) -> "list[TaintHit]":
        return self._analysis(info).hits

    def _analysis(self, info: FunctionInfo) -> _FunctionTaint:
        cached = self._analyses.get(info.qualname)
        if cached is None:
            # Guard against self-recursive functions: while this
            # analysis runs, summary queries about it answer "clean".
            self._in_progress.add(info.qualname)
            try:
                cached = _FunctionTaint(self, info)
            finally:
                self._in_progress.discard(info.qualname)
            self._analyses[info.qualname] = cached
        return cached

    def returns_tainted(self, qualname: str) -> bool:
        """Summary: can ``qualname``'s return value carry source taint?

        Memoized; recursion through the call graph is cut optimistically
        (a cycle member is assumed clean while its own summary is being
        computed — sound enough for the acyclic helper chains the rules
        target).
        """
        if qualname in self._summaries:
            return self._summaries[qualname]
        if qualname in self._in_progress:
            return False
        info = self.project.functions.get(qualname)
        if info is None:
            return False
        self._in_progress.add(qualname)
        try:
            result = self._analysis(info).returns_tainted
        finally:
            self._in_progress.discard(qualname)
        self._summaries[qualname] = result
        return result
