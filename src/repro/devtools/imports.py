"""Lightweight import tracker: resolve names to qualified dotted paths.

The analyzer never imports the code it checks; it resolves names purely
from the module's own ``import`` statements.  ``from
..observability.tracing import Span`` inside ``repro.resources.base``
binds the local name ``Span`` to ``repro.observability.tracing.Span``,
so a rule asking "is this call a Span construction?" compares one
string.  Names bound by assignment, closures, or ``importlib`` tricks
resolve to ``None`` — rules treat unresolved names as out of scope,
which keeps the pass free of false positives at the cost of missing
deliberately obfuscated violations (code review still exists).
"""

from __future__ import annotations

import ast


class ImportTracker:
    """Maps local names to the qualified names their imports bind."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @classmethod
    def from_module(
        cls, tree: ast.Module, module: str = "", is_package: bool = False
    ) -> "ImportTracker":
        """Collect every top-level and nested import binding in ``tree``.

        ``module`` (dotted) and ``is_package`` anchor relative imports;
        with an empty module name, relative imports resolve against
        nothing and their heads stay unresolvable.
        """
        tracker = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        tracker._names[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds the head ``a``; deeper
                        # attributes resolve through the chain walk.
                        head = alias.name.split(".", 1)[0]
                        tracker._names[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = tracker._resolve_from_base(node, module, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    qualified = f"{base}.{alias.name}" if base else alias.name
                    tracker._names[bound] = qualified
        return tracker

    @staticmethod
    def _resolve_from_base(
        node: ast.ImportFrom, module: str, is_package: bool
    ) -> str | None:
        """The dotted package a ``from X import …`` reads from."""
        if node.level == 0:
            return node.module or ""
        parts = module.split(".") if module else []
        if not is_package and parts:
            parts = parts[:-1]
        up = node.level - 1
        if up > len(parts):
            return None
        if up:
            parts = parts[:-up]
        if node.module:
            parts.extend(node.module.split("."))
        return ".".join(parts)

    def bound_names(self) -> dict[str, str]:
        """A copy of the local-name → qualified-name map."""
        return dict(self._names)

    def resolve_name(self, name: str) -> str | None:
        """Qualified form of a bare local name, if an import bound it."""
        return self._names.get(name)

    def resolve(self, node: ast.AST) -> str | None:
        """Qualified dotted name of a Name/Attribute chain, or None.

        ``time.time`` resolves through ``import time``;
        ``Span`` through ``from .tracing import Span``; anything whose
        head is not an import binding (``self.x``, call results) is
        None.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self._names.get(current.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))
