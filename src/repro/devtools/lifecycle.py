"""Path-sensitive must-close analysis for acquired resources.

The serving and incremental stacks hold real OS state — SQLite
connections, sockets, executors, temp files — and a handle that is not
released on *every* CFG path (including the exception edges the
:mod:`repro.devtools.cfg` graphs now model) is a slow leak under the
millions-of-requests traffic the ROADMAP targets.  This module tracks
each acquisition **site** through a tiny abstract domain:

``open``
    acquired on some path and still our responsibility;
``closed``
    a per-spec release method ran (``close``/``shutdown``/``cleanup``),
    or a closing ``with`` suite manages it;
``escaped``
    ownership transferred — returned, yielded, stored on an object,
    put in a container, or passed to another call.

The abstract state is an environment (local name → possible sites,
plus the set of may-open sites) pushed through the CFG by
:func:`repro.devtools.dataflow.solve_forward_env`; a site still open in
the exit block's in-state leaks on at least one path.  ``with`` handling
is spec-aware: ``with open(p) as f:`` closes, but ``with
sqlite3.connect(p) as conn:`` only wraps a *transaction* — the
connection survives the suite, the classic stdlib trap — unless wrapped
in ``contextlib.closing``.

The analysis is intra-procedural and purely syntactic on locals:
attributes (``self._conn``) are treated as escapes, so object-held
handles are the owning class's job (``close()`` methods) rather than a
per-function leak.  That keeps the false-positive rate near zero at the
cost of missing whole-object leaks — the right trade for a blocking CI
gate.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from .cfg import CFG
from .dataflow import solve_forward_env

__all__ = [
    "ResourceSpec",
    "Site",
    "Leak",
    "LifecycleAnalysis",
    "acquire_spec",
    "RESOURCE_SPECS",
]


@dataclass(frozen=True)
class ResourceSpec:
    """How one resource kind is acquired and released."""

    #: Human-readable label for messages ("sqlite3 connection").
    label: str
    #: Receiver methods that release the resource.
    close_methods: tuple[str, ...]
    #: Whether ``with ACQUIRE() as x:`` releases on suite exit.  True
    #: for files/sockets/executors; **False** for ``sqlite3.connect``,
    #: whose context manager only scopes a transaction.
    with_closes: bool


#: Resolved qualified name → spec.  The ``open`` builtin is special-cased
#: in :func:`acquire_spec` (it resolves to no dotted name).
RESOURCE_SPECS: dict[str, ResourceSpec] = {
    "sqlite3.connect": ResourceSpec(
        "sqlite3 connection", ("close",), with_closes=False
    ),
    "socket.socket": ResourceSpec("socket", ("close", "detach"), with_closes=True),
    "socket.create_connection": ResourceSpec(
        "socket", ("close", "detach"), with_closes=True
    ),
    "concurrent.futures.ThreadPoolExecutor": ResourceSpec(
        "thread-pool executor", ("shutdown",), with_closes=True
    ),
    "concurrent.futures.ProcessPoolExecutor": ResourceSpec(
        "process-pool executor", ("shutdown",), with_closes=True
    ),
    "tempfile.NamedTemporaryFile": ResourceSpec(
        "named temp file", ("close",), with_closes=True
    ),
    "tempfile.TemporaryDirectory": ResourceSpec(
        "temp directory", ("cleanup",), with_closes=True
    ),
}

_OPEN_SPEC = ResourceSpec("file handle", ("close",), with_closes=True)

#: Qualified names of the ``closing`` wrapper that turns any
#: ``.close()``-bearing object into a releasing context manager.
_CLOSING_NAMES = ("contextlib.closing", "closing")


def acquire_spec(
    call: ast.Call, resolve: "Callable[[ast.AST], str | None]"
) -> "ResourceSpec | None":
    """The spec when ``call`` acquires a tracked resource, else None."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return _OPEN_SPEC
    qualified = resolve(func)
    if qualified is None:
        return None
    return RESOURCE_SPECS.get(qualified)


def _is_closing_wrapper(
    call: ast.Call, resolve: "Callable[[ast.AST], str | None]"
) -> bool:
    qualified = resolve(call.func)
    if qualified in _CLOSING_NAMES:
        return True
    return isinstance(call.func, ast.Name) and call.func.id == "closing"


@dataclass(frozen=True)
class Site:
    """One acquisition site (a tracked resource-constructor call)."""

    site_id: int
    node: ast.Call
    spec: ResourceSpec
    #: Local name bound at the acquire (None for unbound expressions).
    name: "str | None"
    #: The statement the acquire appears in (fix anchoring).
    stmt: "ast.stmt | None"


@dataclass(frozen=True)
class Leak:
    """A site still open in the exit state on at least one path."""

    site: Site
    #: True when *some* path does release it — i.e. the leak is
    #: path-dependent (usually the exception edges).
    closed_somewhere: bool


@dataclass
class _State:
    """Abstract environment: name → may-denote sites, plus may-open set.

    Compared with ``==`` by the solver; treat instances as immutable
    (every transfer builds fresh containers).
    """

    bindings: dict[str, frozenset[int]] = field(default_factory=dict)
    open_sites: frozenset[int] = frozenset()


def _join(states: "list[_State]") -> _State:
    bindings: dict[str, frozenset[int]] = {}
    open_sites: frozenset[int] = frozenset()
    for state in states:
        open_sites |= state.open_sites
        for name, sites in state.bindings.items():
            bindings[name] = bindings.get(name, frozenset()) | sites
    return _State(bindings, open_sites)


class LifecycleAnalysis:
    """Must-close analysis of one function (or module) body.

    ``resolve`` maps a Name/Attribute chain to its qualified name — the
    :meth:`repro.devtools.context.ModuleContext.resolve` hook — so the
    analysis itself stays import-table agnostic.
    """

    def __init__(
        self,
        body: "list[ast.stmt]",
        resolve: "Callable[[ast.AST], str | None]",
    ) -> None:
        self._resolve = resolve
        self.cfg = CFG.from_statements(body)
        #: id(call node) → Site, assigned deterministically in block
        #: order *before* the fixed point runs (transfer re-executes).
        self._sites_by_node: dict[int, Site] = {}
        self._sites: list[Site] = []
        self._collect_sites()
        self._closed_sites: set[int] = set()
        self._in_states, self._out_states = solve_forward_env(
            self.cfg, self._transfer, _join, _State()
        )

    # -- site discovery ------------------------------------------------------------

    def _collect_sites(self) -> None:
        for block_id in sorted(self.cfg.blocks):
            for stmt in self.cfg.blocks[block_id].statements:
                for node in self._stmt_walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    spec = acquire_spec(node, self._resolve)
                    if spec is None:
                        continue
                    site = Site(
                        site_id=len(self._sites),
                        node=node,
                        spec=spec,
                        name=self._bound_name(stmt, node),
                        stmt=stmt,
                    )
                    self._sites.append(site)
                    self._sites_by_node[id(node)] = site

    @staticmethod
    def _stmt_walk(stmt: ast.stmt) -> Iterator[ast.AST]:
        """The statement's own expressions — compound bodies belong to
        other CFG blocks, nested defs are separate scopes."""
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots: list[ast.AST] = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots = [stmt.iter]
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            roots = []
        else:
            roots = [stmt]
        for root in roots:
            stack: list[ast.AST] = [root]
            while stack:
                node = stack.pop()
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                yield node
                stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _bound_name(stmt: ast.stmt, call: ast.Call) -> "str | None":
        if isinstance(stmt, ast.Assign) and stmt.value is call:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                return stmt.targets[0].id
        if isinstance(stmt, ast.AnnAssign) and stmt.value is call:
            if isinstance(stmt.target, ast.Name):
                return stmt.target.id
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                managed = item.context_expr
                if isinstance(managed, ast.Call) and (
                    managed is call
                    or (managed.args and managed.args[0] is call)
                ):
                    if isinstance(item.optional_vars, ast.Name):
                        return item.optional_vars.id
        return None

    # -- transfer function ---------------------------------------------------------

    def _transfer(self, block_id: int, in_state: _State) -> _State:
        bindings = dict(in_state.bindings)
        open_sites = set(in_state.open_sites)
        for stmt in self.cfg.blocks[block_id].statements:
            self._interpret(stmt, bindings, open_sites)
        return _State(bindings, frozenset(open_sites))

    def _interpret(
        self,
        stmt: ast.stmt,
        bindings: "dict[str, frozenset[int]]",
        open_sites: "set[int]",
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._interpret_with(stmt, bindings, open_sites)
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            sites = self._eval(stmt.value, bindings, open_sites)
            if isinstance(target, ast.Name):
                bindings[target.id] = sites
            else:
                # self.attr = x / d[k] = x: ownership transferred.
                self._escape(sites, open_sites)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            sites = self._eval(stmt.value, bindings, open_sites)
            if isinstance(stmt.target, ast.Name):
                bindings[stmt.target.id] = sites
            else:
                self._escape(sites, open_sites)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape(
                    self._eval(stmt.value, bindings, open_sites), open_sites
                )
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bindings.pop(target.id, None)
            return
        # Everything else: interpret each of the statement's own
        # expressions for acquire/close/escape effects.
        for root in self._expr_roots(stmt):
            self._eval(root, bindings, open_sites)

    @staticmethod
    def _expr_roots(stmt: ast.stmt) -> "list[ast.expr]":
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, ast.Assign):
            return [stmt.value]
        if isinstance(stmt, ast.AugAssign):
            return [stmt.value]
        if isinstance(stmt, ast.Raise):
            return [v for v in (stmt.exc, stmt.cause) if v is not None]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        return []

    def _interpret_with(
        self,
        stmt: "ast.With | ast.AsyncWith",
        bindings: "dict[str, frozenset[int]]",
        open_sites: "set[int]",
    ) -> None:
        for item in stmt.items:
            expr = item.context_expr
            bound = (
                item.optional_vars.id
                if isinstance(item.optional_vars, ast.Name)
                else None
            )
            if isinstance(expr, ast.Call) and _is_closing_wrapper(
                expr, self._resolve
            ):
                # with closing(<expr>) as x: releases whatever <expr>
                # denotes — including a fresh acquire.
                inner = expr.args[0] if expr.args else None
                if inner is None:
                    continue
                sites = self._eval_managed(inner, bindings, open_sites)
                self._kill(sites, open_sites, any_method=True)
                if bound is not None:
                    bindings[bound] = sites
                continue
            if isinstance(expr, ast.Call):
                site = self._sites_by_node.get(id(expr))
                if site is not None:
                    # Evaluate arguments for nested effects first.
                    for arg in expr.args:
                        self._eval(arg, bindings, open_sites)
                    if site.spec.with_closes:
                        # Managed for real: never becomes our problem.
                        if bound is not None:
                            bindings[bound] = frozenset()
                        continue
                    # with sqlite3.connect() as conn: TRANSACTION scope
                    # only — the connection stays open past the suite.
                    open_sites.add(site.site_id)
                    if bound is not None:
                        bindings[bound] = frozenset({site.site_id})
                    continue
                self._eval(expr, bindings, open_sites)
                continue
            if isinstance(expr, ast.Name):
                # with x: — releases x only for with-closing specs.
                sites = bindings.get(expr.id, frozenset())
                self._kill(sites, open_sites, any_method=False, via_with=True)
                continue
            self._eval(expr, bindings, open_sites)

    def _eval_managed(
        self,
        node: ast.expr,
        bindings: "dict[str, frozenset[int]]",
        open_sites: "set[int]",
    ) -> frozenset:
        """Evaluate an expression whose result is context-managed."""
        if isinstance(node, ast.Call):
            site = self._sites_by_node.get(id(node))
            if site is not None:
                for arg in node.args:
                    self._eval(arg, bindings, open_sites)
                return frozenset({site.site_id})
        return self._eval(node, bindings, open_sites)

    def _eval(
        self,
        node: ast.expr,
        bindings: "dict[str, frozenset[int]]",
        open_sites: "set[int]",
    ) -> frozenset:
        """Interpret one expression; returns the sites it may denote."""
        if isinstance(node, ast.Name):
            return bindings.get(node.id, frozenset())
        if isinstance(node, ast.Await):
            return self._eval(node.value, bindings, open_sites)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._escape(
                    self._eval(node.value, bindings, open_sites), open_sites
                )
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            sites = self._eval(node.value, bindings, open_sites)
            if isinstance(node.target, ast.Name):
                bindings[node.target.id] = sites
            return sites
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            merged: frozenset = frozenset()
            for element in node.elts:
                merged |= self._eval(element, bindings, open_sites)
            return merged
        if isinstance(node, ast.IfExp):
            self._eval(node.test, bindings, open_sites)
            return self._eval(node.body, bindings, open_sites) | self._eval(
                node.orelse, bindings, open_sites
            )
        if isinstance(node, ast.Starred):
            return self._eval(node.value, bindings, open_sites)
        if isinstance(node, ast.Attribute):
            # Receiver use (f.name, conn.row_factory): not an escape.
            self._eval(node.value, bindings, open_sites)
            return frozenset()
        if isinstance(node, ast.Call):
            return self._eval_call(node, bindings, open_sites)
        # Generic fallback: evaluate children; any tracked site flowing
        # into an untracked construct escapes (comprehensions, f-strings,
        # subscripts, bin-ops...).
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._escape(
                    self._eval(child, bindings, open_sites), open_sites
                )
        return frozenset()

    def _eval_call(
        self,
        node: ast.Call,
        bindings: "dict[str, frozenset[int]]",
        open_sites: "set[int]",
    ) -> frozenset:
        func = node.func
        # x.close() / executor.shutdown() / tmpdir.cleanup()
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver_sites = bindings.get(func.value.id, frozenset())
            released = {
                site_id
                for site_id in receiver_sites
                if func.attr in self._sites[site_id].spec.close_methods
            }
            if released:
                self._kill(frozenset(released), open_sites, any_method=True)
                for arg in node.args:
                    self._eval(arg, bindings, open_sites)
                return frozenset()
        # Acquire?
        site = self._sites_by_node.get(id(node))
        if site is not None:
            for arg in node.args:
                self._eval(arg, bindings, open_sites)
            for keyword in node.keywords:
                self._eval(keyword.value, bindings, open_sites)
            open_sites.add(site.site_id)
            return frozenset({site.site_id})
        # Ordinary call: arguments escape (ownership may transfer to the
        # callee — `_write_artifact(conn)`, `stack.enter_context(f)`);
        # the receiver of a method call does not.
        if isinstance(func, ast.Attribute):
            self._eval(func.value, bindings, open_sites)
        for arg in node.args:
            self._escape(self._eval(arg, bindings, open_sites), open_sites)
        for keyword in node.keywords:
            self._escape(
                self._eval(keyword.value, bindings, open_sites), open_sites
            )
        return frozenset()

    def _escape(self, sites: frozenset, open_sites: "set[int]") -> None:
        open_sites.difference_update(sites)

    def _kill(
        self,
        sites: frozenset,
        open_sites: "set[int]",
        any_method: bool,
        via_with: bool = False,
    ) -> None:
        for site_id in sites:
            if via_with and not self._sites[site_id].spec.with_closes:
                continue
            open_sites.discard(site_id)
            self._closed_sites.add(site_id)

    # -- results -------------------------------------------------------------------

    def leaks(self) -> "list[Leak]":
        """Sites still open in the exit block's in-state, in site order."""
        exit_state = self._in_states.get(self.cfg.exit_id)
        if not isinstance(exit_state, _State):  # pragma: no cover - defensive
            return []
        return [
            Leak(
                site=self._sites[site_id],
                closed_somewhere=site_id in self._closed_sites,
            )
            for site_id in sorted(exit_state.open_sites)
        ]

    @property
    def sites(self) -> "tuple[Site, ...]":
        return tuple(self._sites)
