"""Baseline files: adopt the analyzer on a codebase with existing debt.

A baseline is the ratchet pattern ruff/ESLint users know: record every
current finding once (``--write-baseline``), commit the file, and from
then on only *new* findings fail the build.  Old debt stays visible in
the baseline file and can be burned down deliberately instead of
blocking unrelated work.

Each finding is reduced to a **fingerprint** — a short hash of
``(path, rule_id, message)``.  Deliberately no line number: moving a
known finding up or down a file (the most common kind of churn) does
not un-baseline it, while editing the offending code enough to change
the message (different variable, different sink) does.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .findings import Finding

__all__ = [
    "BaselineError",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: Schema version of the baseline file.
_BASELINE_SCHEMA = 1


class BaselineError(ValueError):
    """The baseline file is missing or malformed."""


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across line-number churn."""
    payload = f"{finding.path}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_baseline(findings: "list[Finding]", path: "str | Path") -> int:
    """Write a baseline covering ``findings``; returns how many."""
    prints = sorted({fingerprint(finding) for finding in findings})
    payload = {"schema": _BASELINE_SCHEMA, "fingerprints": prints}
    Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(prints)


def load_baseline(path: "str | Path") -> "frozenset[str]":
    """Fingerprints from a baseline file; raises BaselineError loudly.

    A missing or corrupt baseline must fail the run — silently treating
    it as empty would re-report (or worse, with an inverted check, hide)
    every baselined finding.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != _BASELINE_SCHEMA
        or not isinstance(payload.get("fingerprints"), list)
    ):
        raise BaselineError(f"baseline {path} has an unexpected shape")
    return frozenset(str(item) for item in payload["fingerprints"])


def apply_baseline(
    findings: "list[Finding]", baseline: "frozenset[str]"
) -> "tuple[list[Finding], int]":
    """Split findings into (new, number suppressed by the baseline)."""
    fresh = [f for f in findings if fingerprint(f) not in baseline]
    return fresh, len(findings) - len(fresh)
