"""Reporters: findings → human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter

from .findings import Finding

#: Version stamp of the JSON report schema.
JSON_SCHEMA_VERSION = 1


def render_text(findings: list[Finding]) -> str:
    """One line per finding plus a summary tail.

    ``path:line:col: RULE [severity] message  (hint: ...)`` — the same
    shape compilers use, so editors and CI log scrapers link straight
    to the source location.
    """
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(f"{len(findings)} finding(s): {breakdown}")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Stable JSON document: version, findings, and summary counts."""
    report = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in findings).items())
            ),
            "by_severity": dict(
                sorted(Counter(f.severity.label for f in findings).items())
            ),
        },
    }
    return json.dumps(report, indent=2, sort_keys=True)
