"""SARIF 2.1.0 output — the interchange format CI code-scanning speaks.

One ``run`` with the full rule catalog in ``tool.driver.rules`` (so
viewers can show summaries/hints for rules with zero results this run)
and one ``result`` per finding.  The document is **deterministic**:
no timestamps, no absolute paths, no environment capture — the same
findings always serialize to the same bytes, which is what lets CI
assert that a warm-cache run is byte-identical to a cold one.
"""

from __future__ import annotations

import json

from .findings import Finding, Severity
from .rules import Rule

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity → SARIF ``level``.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_descriptor(rule: Rule) -> dict:
    descriptor: dict = {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }
    if rule.hint:
        descriptor["help"] = {"text": rule.hint}
    if rule.scopes:
        descriptor["properties"] = {"scopes": list(rule.scopes)}
    return descriptor


def render_sarif(
    findings: "list[Finding]", rules: "list[Rule] | None" = None
) -> str:
    """Findings as a SARIF 2.1.0 JSON document (stable byte output)."""
    descriptors = [_rule_descriptor(rule) for rule in rules or []]
    known = {descriptor["id"] for descriptor in descriptors}
    # Pseudo-rules that appear only in results (e.g. PARSE) still need
    # catalog entries so ruleIndex stays valid.
    for finding in findings:
        if finding.rule_id not in known:
            known.add(finding.rule_id)
            descriptors.append(
                {
                    "id": finding.rule_id,
                    "shortDescription": {"text": finding.rule_id},
                    "defaultConfiguration": {
                        "level": _LEVELS[finding.severity]
                    },
                }
            )
    index_of = {
        descriptor["id"]: index for index, descriptor in enumerate(descriptors)
    }
    results = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message = f"{message}. Hint: {finding.hint}"
        result = {
            "ruleId": finding.rule_id,
            "ruleIndex": index_of[finding.rule_id],
            "level": _LEVELS[finding.severity],
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.trace:
            # Interprocedural findings carry their call/flow path; SARIF
            # renders it as one codeFlow with a single threadFlow.
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        "physicalLocation": {
                                            "artifactLocation": {
                                                "uri": step.path.replace(
                                                    "\\", "/"
                                                ),
                                            },
                                            "region": {
                                                "startLine": step.line,
                                            },
                                        },
                                        "message": {"text": step.message},
                                    }
                                }
                                for step in finding.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": "1.0.0",
                        "rules": descriptors,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
