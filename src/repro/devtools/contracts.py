"""Static extraction of the program's declared contracts.

The reproduction's subsystems talk to each other through interfaces the
type checker never sees: SQLite DDL embedded in string literals, JSON
payloads tagged with versioned schema ids, free-string metric/span/log
names, dataclass config fields, and argparse flags.  Drift between the
two sides of any of these contracts (a writer and a reader, a query and
its DDL, a flag and its handler) only surfaces at runtime.

This module harvests every such contract from a parsed
:class:`~repro.devtools.project.ProjectModel` — purely syntactically,
never importing the analyzed code — into one deterministic
:class:`ProjectContracts` database (payload schema
``repro.contracts/1``).  The contract rules in
:mod:`repro.devtools.contract_rules` check both sides of each contract
against it, and ``repro lint --contracts-out`` serializes it for CI.

Extracted surfaces:

* **SQL** — ``CREATE TABLE``/``CREATE INDEX`` statements found in
  module-level string constants or literal ``execute*()`` arguments,
  plus every query literal passed to ``.execute()`` /
  ``.executemany()`` / ``.executescript()``.  Interpolated f-string
  fragments become the :data:`DYNAMIC` wildcard marker.
* **Payload schemas** — dict literals carrying a ``"schema"`` key whose
  value is a versioned id (``repro.index/1``-style) are *writers*;
  functions comparing a value against such an id are *readers*.  Key
  sets are harvested on both sides.
* **Observability names** — literals passed to
  ``metrics.increment/gauge/record_time/observe``, ``Span.begin`` /
  ``tracer.span``, and structured-log calls; names resolved through the
  :mod:`repro.observability.names` registry are marked *declared*.
* **Config** — fields of ``*Config`` dataclasses versus attribute reads
  anywhere in the program (``__post_init__`` bodies excluded, so
  validation-only reads don't mask dead fields).
* **CLI** — every ``add_argument`` dest versus the union of
  ``args.<dest>`` / ``getattr(args, "<dest>")`` reads project-wide.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from .context import ModuleContext
from .project import ProjectModel

__all__ = [
    "CONTRACTS_SCHEMA",
    "DYNAMIC",
    "ProjectContracts",
    "contracts_for",
    "extract_contracts",
]

#: Schema tag of the contracts payload (bump on layout changes).
CONTRACTS_SCHEMA = "repro.contracts/1"

#: Marker substituted for each interpolated f-string fragment in a
#: harvested SQL string or observability name.  Literal braces cannot
#: survive unescaped in f-string text, so the marker never collides
#: with real content.
DYNAMIC = "{*}"

#: A versioned payload schema id: ``repro.index/1``, ``repro.bench_lint/1``.
_SCHEMA_ID_RE = re.compile(r"[a-z][\w.-]*/\d+\Z")

#: ``CREATE TABLE [IF NOT EXISTS] name (`` — the column body is scanned
#: with a balanced-paren walk, not a regex, because column constraints
#: nest parentheses (``PRIMARY KEY (a, b)``).
_CREATE_TABLE_RE = re.compile(
    r"\bCREATE\s+TABLE\s+(?:IF\s+NOT\s+EXISTS\s+)?([A-Za-z_]\w*)\s*\(",
    re.IGNORECASE,
)

_CREATE_INDEX_RE = re.compile(
    r"\bCREATE\s+(?:UNIQUE\s+)?INDEX\s+(?:IF\s+NOT\s+EXISTS\s+)?"
    r"([A-Za-z_]\w*)\s+ON\s+([A-Za-z_]\w*)\s*\(([^)]*)\)",
    re.IGNORECASE,
)

#: Tokens that start a column *constraint* rather than a column name.
_DDL_CONSTRAINT_STARTERS = frozenset(
    {"primary", "unique", "foreign", "check", "constraint"}
)

_SQL_EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})
_METRIC_METHODS = frozenset({"increment", "gauge", "record_time", "observe"})
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical"}
)
_LOG_RECEIVERS = frozenset({"log", "logger"})

#: Conventional names an ``argparse.Namespace`` travels under.
_ARGS_NAMES = frozenset({"args", "options", "namespace", "ns", "opts"})


def _is_registry_module(module: str) -> bool:
    """Whether ``module`` is an observability-name registry module."""
    return module == "names" or module.endswith(".names")


# ---------------------------------------------------------------------------
# contract records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SqlTable:
    """One ``CREATE TABLE`` statement harvested from a string literal."""

    name: str
    module: str
    path: str
    line: int
    columns: tuple[str, ...]


@dataclass(frozen=True)
class SqlIndexDef:
    """One ``CREATE INDEX`` statement."""

    name: str
    table: str
    module: str
    path: str
    line: int
    columns: tuple[str, ...]


@dataclass(frozen=True)
class SqlQuery:
    """One literal query passed to ``execute``/``executemany``."""

    sql: str
    module: str
    path: str
    line: int
    col: int
    dynamic: bool


@dataclass(frozen=True)
class PayloadSite:
    """A writer or reader of one versioned payload schema id."""

    schema_id: str
    role: str  # "writer" | "reader"
    module: str
    path: str
    function: str
    line: int
    keys: tuple[str, ...]


@dataclass(frozen=True)
class ObsName:
    """One metric/span/log name emit site."""

    name: str
    kind: str  # "metric" | "span" | "log"
    module: str
    path: str
    line: int
    col: int
    dynamic: bool
    declared: bool


@dataclass(frozen=True)
class ConfigClassDef:
    """One ``*Config`` dataclass definition."""

    cls: str
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class ConfigField:
    """One annotated field of a ``*Config`` dataclass."""

    cls: str
    name: str
    module: str
    path: str
    line: int


@dataclass(frozen=True)
class ConfigGetattr:
    """A ``getattr(config-ish, "name")`` dynamic config read."""

    name: str
    module: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class CliFlag:
    """One ``add_argument`` declaration and its computed dest."""

    dest: str
    option: str
    module: str
    path: str
    line: int
    col: int


@dataclass
class ProjectContracts:
    """Every contract harvested from one project — the rules' database."""

    tables: tuple[SqlTable, ...] = ()
    indexes: tuple[SqlIndexDef, ...] = ()
    queries: tuple[SqlQuery, ...] = ()
    payload_sites: tuple[PayloadSite, ...] = ()
    #: module → every constant key the module reads from any mapping
    #: (subscripts, ``.get``, ``in`` membership, key tuples) — the broad
    #: read evidence SCHEMA001 uses before calling a written key dead.
    module_read_keys: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Modules that declare a versioned schema-id string constant —
    #: ``SELECT *`` against their tables is a drift hazard.
    versioned_modules: frozenset[str] = frozenset()
    obs_names: tuple[ObsName, ...] = ()
    #: Name values declared in the observability-names registry.
    declared_obs_values: frozenset[str] = frozenset()
    config_classes: tuple[ConfigClassDef, ...] = ()
    config_fields: tuple[ConfigField, ...] = ()
    #: Every attribute name read anywhere (``__post_init__`` excluded).
    attribute_reads: frozenset[str] = frozenset()
    config_getattrs: tuple[ConfigGetattr, ...] = ()
    cli_flags: tuple[CliFlag, ...] = ()
    cli_consumed: frozenset[str] = frozenset()
    #: ``vars(args)`` seen somewhere: every dest counts as consumed.
    cli_consumes_all: bool = False

    # -- lookup helpers ----------------------------------------------------------

    def tables_in(self, module: str) -> dict[str, SqlTable]:
        return {t.name: t for t in self.tables if t.module == module}

    def tables_by_name(self) -> dict[str, list[SqlTable]]:
        by_name: dict[str, list[SqlTable]] = {}
        for table in self.tables:
            by_name.setdefault(table.name, []).append(table)
        return by_name

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> dict:
        """Deterministic JSON-ready payload (schema ``repro.contracts/1``).

        Every collection is sorted, every value a JSON scalar/list/dict,
        so ``json.dumps(..., sort_keys=True)`` is byte-stable across
        runs and across a cache round-trip.
        """
        return {
            "schema": CONTRACTS_SCHEMA,
            "sql": {
                "tables": [
                    {
                        "name": t.name,
                        "module": t.module,
                        "path": t.path,
                        "line": t.line,
                        "columns": list(t.columns),
                    }
                    for t in sorted(
                        self.tables, key=lambda t: (t.module, t.name, t.line)
                    )
                ],
                "indexes": [
                    {
                        "name": i.name,
                        "table": i.table,
                        "module": i.module,
                        "path": i.path,
                        "line": i.line,
                        "columns": list(i.columns),
                    }
                    for i in sorted(
                        self.indexes, key=lambda i: (i.module, i.name, i.line)
                    )
                ],
                "queries": [
                    {
                        "sql": q.sql,
                        "module": q.module,
                        "path": q.path,
                        "line": q.line,
                        "col": q.col,
                        "dynamic": q.dynamic,
                    }
                    for q in sorted(
                        self.queries, key=lambda q: (q.path, q.line, q.col, q.sql)
                    )
                ],
            },
            "payload_schemas": [
                {
                    "schema_id": s.schema_id,
                    "role": s.role,
                    "module": s.module,
                    "path": s.path,
                    "function": s.function,
                    "line": s.line,
                    "keys": sorted(s.keys),
                }
                for s in sorted(
                    self.payload_sites,
                    key=lambda s: (s.schema_id, s.role, s.path, s.line),
                )
            ],
            "observability": {
                "names": [
                    {
                        "name": n.name,
                        "kind": n.kind,
                        "module": n.module,
                        "path": n.path,
                        "line": n.line,
                        "col": n.col,
                        "dynamic": n.dynamic,
                        "declared": n.declared,
                    }
                    for n in sorted(
                        self.obs_names,
                        key=lambda n: (n.kind, n.name, n.path, n.line, n.col),
                    )
                ],
                "declared": sorted(self.declared_obs_values),
            },
            "config": {
                "classes": [
                    {
                        "cls": c.cls,
                        "module": c.module,
                        "path": c.path,
                        "line": c.line,
                    }
                    for c in sorted(
                        self.config_classes, key=lambda c: (c.module, c.cls)
                    )
                ],
                "fields": [
                    {
                        "cls": f.cls,
                        "name": f.name,
                        "module": f.module,
                        "path": f.path,
                        "line": f.line,
                        "read": f.name in self.attribute_reads,
                    }
                    for f in sorted(
                        self.config_fields,
                        key=lambda f: (f.module, f.cls, f.line),
                    )
                ],
                "getattr_reads": [
                    {
                        "name": g.name,
                        "module": g.module,
                        "path": g.path,
                        "line": g.line,
                    }
                    for g in sorted(
                        self.config_getattrs,
                        key=lambda g: (g.path, g.line, g.name),
                    )
                ],
            },
            "cli": {
                "flags": [
                    {
                        "dest": f.dest,
                        "option": f.option,
                        "module": f.module,
                        "path": f.path,
                        "line": f.line,
                        "consumed": self.cli_consumes_all
                        or f.dest in self.cli_consumed,
                    }
                    for f in sorted(
                        self.cli_flags, key=lambda f: (f.path, f.line, f.dest)
                    )
                ],
                "consumed": sorted(self.cli_consumed),
                "consumes_all": self.cli_consumes_all,
            },
        }


def contracts_for(project: ProjectModel) -> ProjectContracts:
    """Extract (or reuse) the contracts of ``project``.

    Memoized on the project instance so the five contract rules and the
    ``--contracts-out`` serialization share one extraction pass.
    """
    cached = getattr(project, "_contracts_cache", None)
    if cached is None:
        cached = extract_contracts(project)
        project._contracts_cache = cached
    return cached


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def extract_contracts(project: ProjectModel) -> ProjectContracts:
    """Harvest every contract surface from the project's modules."""
    contexts = sorted(project.modules.values(), key=lambda ctx: ctx.path)
    consts = {ctx.module: _module_constants(ctx) for ctx in contexts}
    harvest = _Harvest(consts)
    for ctx in contexts:
        harvest.scan_module(ctx)
    return harvest.build()


def _module_constants(ctx: ModuleContext) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` string assignments."""
    table: dict[str, str] = {}
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            table[target.id] = value.value
    return table


class _Harvest:
    """Accumulates contract records over one pass per module."""

    def __init__(self, consts: dict[str, dict[str, str]]) -> None:
        self._consts = consts
        self._tables: list[SqlTable] = []
        self._indexes: list[SqlIndexDef] = []
        self._queries: list[SqlQuery] = []
        self._payload_sites: list[PayloadSite] = []
        self._module_read_keys: dict[str, frozenset[str]] = {}
        self._versioned_modules: set[str] = set()
        self._obs_names: list[ObsName] = []
        self._declared_obs: set[str] = set()
        self._config_classes: list[ConfigClassDef] = []
        self._config_fields: list[ConfigField] = []
        self._attribute_reads: set[str] = set()
        self._config_getattrs: list[ConfigGetattr] = []
        self._cli_flags: list[CliFlag] = []
        self._cli_consumed: set[str] = set()
        self._cli_consumes_all = False

    def build(self) -> ProjectContracts:
        return ProjectContracts(
            tables=tuple(self._tables),
            indexes=tuple(self._indexes),
            queries=tuple(self._queries),
            payload_sites=tuple(self._payload_sites),
            module_read_keys=self._module_read_keys,
            versioned_modules=frozenset(self._versioned_modules),
            obs_names=tuple(self._obs_names),
            declared_obs_values=frozenset(self._declared_obs),
            config_classes=tuple(self._config_classes),
            config_fields=tuple(self._config_fields),
            attribute_reads=frozenset(self._attribute_reads),
            config_getattrs=tuple(self._config_getattrs),
            cli_flags=tuple(self._cli_flags),
            cli_consumed=frozenset(self._cli_consumed),
            cli_consumes_all=self._cli_consumes_all,
        )

    # -- per-module scan ---------------------------------------------------------

    def scan_module(self, ctx: ModuleContext) -> None:
        module_consts = self._consts.get(ctx.module, {})
        for value in module_consts.values():
            if _SCHEMA_ID_RE.match(value):
                self._versioned_modules.add(ctx.module)
        if _is_registry_module(ctx.module):
            self._declared_obs.update(module_consts.values())

        # DDL from module-level constants (the ``_SCHEMA = "..."`` idiom).
        for node in ctx.tree.body:
            value = getattr(node, "value", None)
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and "create table" in value.value.lower()
            ):
                self._harvest_ddl(ctx, value.value, node.lineno)

        self._attribute_reads.update(_attribute_reads(ctx.tree))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._scan_call(ctx, node)
            elif isinstance(node, ast.Dict):
                self._scan_dict(ctx, node)
            elif isinstance(node, ast.Compare):
                self._scan_compare(ctx, node)
            elif isinstance(node, ast.ClassDef):
                self._scan_class(ctx, node)
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id in _ARGS_NAMES
            ):
                self._cli_consumed.add(node.attr)
        self._module_read_keys[ctx.module] = frozenset(
            _constant_read_keys(ctx.tree)
        )

    # -- SQL ---------------------------------------------------------------------

    def _harvest_ddl(self, ctx: ModuleContext, text: str, line: int) -> None:
        for match in _CREATE_TABLE_RE.finditer(text):
            body = _balanced_parens(text, match.end() - 1)
            if body is None:
                continue
            columns = _ddl_columns(body)
            self._tables.append(
                SqlTable(
                    name=match.group(1),
                    module=ctx.module,
                    path=ctx.path,
                    line=line,
                    columns=tuple(columns),
                )
            )
        for match in _CREATE_INDEX_RE.finditer(text):
            columns = tuple(
                part.strip() for part in match.group(3).split(",") if part.strip()
            )
            self._indexes.append(
                SqlIndexDef(
                    name=match.group(1),
                    table=match.group(2),
                    module=ctx.module,
                    path=ctx.path,
                    line=line,
                    columns=columns,
                )
            )

    def _scan_call(self, ctx: ModuleContext, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _SQL_EXECUTE_METHODS and node.args:
                self._scan_execute(ctx, node)
            if func.attr == "add_argument":
                self._scan_add_argument(ctx, node)
            self._scan_obs_call(ctx, node, func)
        elif isinstance(func, ast.Name):
            if func.id == "getattr" and len(node.args) >= 2:
                self._scan_getattr(ctx, node)
            if (
                func.id == "vars"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in _ARGS_NAMES
            ):
                self._cli_consumes_all = True

    def _scan_execute(self, ctx: ModuleContext, node: ast.Call) -> None:
        resolved = self._string_value(ctx, node.args[0])
        if resolved is None:
            return
        text, dynamic, _declared = resolved
        lowered = text.lower()
        if "create table" in lowered or "create index" in lowered:
            # DDL applied inline (not via a module constant): harvest it
            # unless the same statement was already seen as a constant.
            if not isinstance(node.args[0], (ast.Constant, ast.JoinedStr)):
                return  # resolved module constant: harvested at its assignment
            self._harvest_ddl(ctx, text, node.lineno)
            return
        self._queries.append(
            SqlQuery(
                sql=text,
                module=ctx.module,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                dynamic=dynamic,
            )
        )

    # -- payload schemas ---------------------------------------------------------

    def _dict_schema_id(self, ctx: ModuleContext, node: ast.Dict) -> "str | None":
        """The versioned schema id a dict literal tags itself with."""
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "schema"
                and value is not None
            ):
                resolved = self._string_value(ctx, value)
                if resolved is not None and _SCHEMA_ID_RE.match(resolved[0]):
                    return resolved[0]
        return None

    def _scan_dict(self, ctx: ModuleContext, node: ast.Dict) -> None:
        schema_id = self._dict_schema_id(ctx, node)
        if schema_id is None:
            return
        scope = _enclosing_function(ctx, node)
        scope_node = scope[1] if scope is not None else ctx.tree
        # Writer keys: every dict literal in the enclosing function
        # (helper sub-payloads built alongside the tagged dict count)
        # plus constant-key subscript stores (``payload["extra"] = ...``)
        # — but dict literals tagged with a *different* schema id are
        # excluded, since one function may write several payload kinds.
        keys = _subscript_store_keys(scope_node)
        for sibling in ast.walk(scope_node):
            if not isinstance(sibling, ast.Dict):
                continue
            other = self._dict_schema_id(ctx, sibling)
            if other is not None and other != schema_id:
                continue
            for key in sibling.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        self._payload_sites.append(
            PayloadSite(
                schema_id=schema_id,
                role="writer",
                module=ctx.module,
                path=ctx.path,
                function=scope[0] if scope is not None else "<module>",
                line=node.lineno,
                keys=tuple(sorted(keys)),
            )
        )

    def _scan_compare(self, ctx: ModuleContext, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        schema_id = None
        for operand in operands:
            resolved = self._string_value(ctx, operand)
            if resolved is not None and _SCHEMA_ID_RE.match(resolved[0]):
                schema_id = resolved[0]
        if schema_id is None:
            return
        scope = _enclosing_function(ctx, node)
        if scope is None:
            return
        name, scope_node = scope
        self._payload_sites.append(
            PayloadSite(
                schema_id=schema_id,
                role="reader",
                module=ctx.module,
                path=ctx.path,
                function=name,
                line=node.lineno,
                keys=tuple(sorted(_constant_read_keys(scope_node))),
            )
        )

    # -- observability names -----------------------------------------------------

    def _scan_obs_call(
        self, ctx: ModuleContext, node: ast.Call, func: ast.Attribute
    ) -> None:
        kind = None
        if func.attr in _METRIC_METHODS:
            kind = "metric"
        elif func.attr == "span" and _receiver_is_tracer(func.value):
            kind = "span"
        elif func.attr == "begin" and _receiver_is_span_type(ctx, func.value):
            kind = "span"
        elif (
            func.attr in _LOG_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in _LOG_RECEIVERS
        ):
            kind = "log"
        if kind is None or not node.args:
            return
        resolved = self._string_value(ctx, node.args[0])
        if resolved is None:
            return
        text, dynamic, declared = resolved
        self._obs_names.append(
            ObsName(
                name=text,
                kind=kind,
                module=ctx.module,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                dynamic=dynamic,
                declared=declared,
            )
        )

    # -- config ------------------------------------------------------------------

    def _scan_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        if not node.name.endswith("Config") or not _is_dataclass(node):
            return
        self._config_classes.append(
            ConfigClassDef(
                cls=node.name, module=ctx.module, path=ctx.path, line=node.lineno
            )
        )
        for item in node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
                and "ClassVar" not in ast.dump(item.annotation)
            ):
                self._config_fields.append(
                    ConfigField(
                        cls=node.name,
                        name=item.target.id,
                        module=ctx.module,
                        path=ctx.path,
                        line=item.lineno,
                    )
                )

    def _scan_getattr(self, ctx: ModuleContext, node: ast.Call) -> None:
        receiver, name_arg = node.args[0], node.args[1]
        if not (
            isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
        ):
            return
        name = name_arg.value
        receiver_text = ast.unparse(receiver).lower()
        if isinstance(receiver, ast.Name) and receiver.id in _ARGS_NAMES:
            self._cli_consumed.add(name)
            return
        if "config" in receiver_text:
            self._attribute_reads.add(name)
            self._config_getattrs.append(
                ConfigGetattr(
                    name=name,
                    module=ctx.module,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )

    # -- CLI ---------------------------------------------------------------------

    def _scan_add_argument(self, ctx: ModuleContext, node: ast.Call) -> None:
        dest = None
        for keyword in node.keywords:
            if keyword.arg == "dest" and isinstance(keyword.value, ast.Constant):
                dest = str(keyword.value.value)
        options = [
            arg.value
            for arg in node.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if not options and dest is None:
            return
        option = options[0] if options else dest or ""
        if "-h" in options or "--help" in options:
            return
        if dest is None:
            longs = [o for o in options if o.startswith("--")]
            if longs:
                dest = longs[0].lstrip("-").replace("-", "_")
            elif options[0].startswith("-"):
                dest = options[0].lstrip("-").replace("-", "_")
            else:
                dest = options[0].replace("-", "_")
        self._cli_flags.append(
            CliFlag(
                dest=dest,
                option=option,
                module=ctx.module,
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    # -- string resolution -------------------------------------------------------

    def _string_value(
        self, ctx: ModuleContext, node: ast.AST
    ) -> "tuple[str, bool, bool] | None":
        """Resolve a string expression → ``(text, dynamic, declared)``.

        ``declared`` marks values resolved through an observability-name
        registry module; ``dynamic`` marks f-strings (interpolations are
        replaced by :data:`DYNAMIC`) and registry helper calls.
        """
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return node.value, False, False
            return None
        if isinstance(node, ast.JoinedStr):
            parts = []
            dynamic = False
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                else:
                    parts.append(DYNAMIC)
                    dynamic = True
            return "".join(parts), dynamic, False
        if isinstance(node, (ast.Name, ast.Attribute)):
            qualified = ctx.resolve(node)
            if qualified is not None and "." in qualified:
                module, attr = qualified.rsplit(".", 1)
                value = self._consts.get(module, {}).get(attr)
                if value is not None:
                    return value, False, _is_registry_module(module)
            if isinstance(node, ast.Name):
                value = self._consts.get(ctx.module, {}).get(node.id)
                if value is not None:
                    return value, False, _is_registry_module(ctx.module)
            return None
        if isinstance(node, ast.Call):
            qualified = ctx.resolve(node.func)
            if qualified is not None and "." in qualified:
                module = qualified.rsplit(".", 1)[0]
                if _is_registry_module(module):
                    return DYNAMIC, True, True
            return None
        return None


# ---------------------------------------------------------------------------
# AST walk helpers
# ---------------------------------------------------------------------------


def _attribute_reads(tree: ast.AST) -> set[str]:
    """Attribute names read anywhere outside ``__post_init__`` bodies.

    CLI consumption (``args.<dest>``) and config-field liveness both key
    off this; ``__post_init__`` is excluded so a field that is *only*
    validated at construction still counts as never read.
    """
    out: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "__post_init__"
            ):
                continue
            if isinstance(child, ast.Attribute) and isinstance(
                child.ctx, ast.Load
            ):
                out.add(child.attr)
            visit(child)

    visit(tree)
    return out


def _constant_read_keys(scope: ast.AST) -> set[str]:
    """Constant mapping keys read within ``scope``.

    Covers ``payload["key"]``, ``payload.get("key")``, ``"key" in
    payload``, and string constants inside tuple/list literals (the
    ``for key in ("a", "b"): key in payload`` idiom).
    """
    keys: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            if isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                keys.add(node.left.value)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    keys.add(element.value)
    return keys


def _subscript_store_keys(scope: ast.AST) -> set[str]:
    """Constant keys assigned via subscript within ``scope``."""
    keys: set[str] = set()
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Store)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
    return keys


def _enclosing_function(
    ctx: ModuleContext, node: ast.AST
) -> "tuple[str, ast.AST] | None":
    """Nearest enclosing function ``(name, node)`` of ``node``."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name, ancestor
    return None


def _receiver_is_tracer(value: ast.AST) -> bool:
    if isinstance(value, ast.Attribute):
        return value.attr == "tracer"
    return isinstance(value, ast.Name) and value.id == "tracer"


def _receiver_is_span_type(ctx: ModuleContext, value: ast.AST) -> bool:
    if isinstance(value, ast.Name) and value.id == "Span":
        return True
    qualified = ctx.resolve(value)
    return qualified is not None and qualified.rsplit(".", 1)[-1] == "Span"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


# ---------------------------------------------------------------------------
# DDL parsing helpers
# ---------------------------------------------------------------------------


def _balanced_parens(text: str, start: int) -> str | None:
    """The contents of the paren group opening at ``text[start]``."""
    if start >= len(text) or text[start] != "(":
        return None
    depth = 0
    for position in range(start, len(text)):
        char = text[position]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1 : position]
    return None


def _ddl_columns(body: str) -> list[str]:
    """Column names from a ``CREATE TABLE`` body (constraints skipped)."""
    columns: list[str] = []
    depth = 0
    part_start = 0
    parts: list[str] = []
    for position, char in enumerate(body):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(body[part_start:position])
            part_start = position + 1
    parts.append(body[part_start:])
    for part in parts:
        tokens = part.split()
        if not tokens:
            continue
        first = tokens[0]
        if first.lower() in _DDL_CONSTRAINT_STARTERS:
            continue
        columns.append(first.strip('"`[]'))
    return columns
