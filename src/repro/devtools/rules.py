"""The rule registry and the initial project-invariant ruleset.

A rule is a class with a ``rule_id``, a severity, optional module
scoping, and a :meth:`Rule.check` generator over one
:class:`~repro.devtools.context.ModuleContext`.  Defining a subclass
registers it — adding a check in a future PR is ~30 lines:

    class DET999(Rule):
        rule_id = "DET999"
        severity = Severity.ERROR
        summary = "what the invariant is"
        hint = "how to fix a violation"
        scopes = ("repro.core",)

        def check(self, ctx):
            for node in ast.walk(ctx.tree):
                if ...:
                    yield self.finding(ctx, node, "message")

Rules come in two flavours:

* **module rules** check one file at a time via :meth:`Rule.check` —
  they are cheap and cacheable per file;
* **project rules** (``requires_project = True``) check the whole
  program via :meth:`Rule.check_project` over a
  :class:`~repro.devtools.project.ProjectModel` — call-graph and
  cross-module taint questions live there.

Current ruleset (syntactic rules here; flow rules in
:mod:`repro.devtools.flow_rules`, concurrency/lifecycle rules in
:mod:`repro.devtools.concurrency_rules`):

========  ==========================================================
DET001    no wall clocks / unseeded randomness in core stages
DET002    no unordered iteration feeding ordered output (data-flow)
PAR001    process-pool payloads must not close over unpicklables
OBS001    spans/tracers are built via the no-op-safe bundle only
CACHE001  cache writes must store immutable values
API001    public API functions carry complete type annotations
CKPT001   incremental-state writes go through the atomic helper
FLOW001   resource responses validated before cache writes (taint)
FLOW002   no silent exception swallow in resource/db paths
RACE001   no unguarded shared-state mutation on worker paths
SRV001    no blocking I/O inside async view handlers (syntactic)
ASYNC001  no blocking call transitively reachable from a coroutine
ASYNC002  coroutine results must be awaited or scheduled
ASYNC003  no await while holding a synchronous threading lock
LEAK001   acquired resources must be closed on every path
RACE002   no unlocked shared-attribute mutation across loop/thread
SQL001    queries must agree with the extracted CREATE TABLE DDL
SCHEMA001 writer/reader key sets of a schema id must agree
OBS002    no singleton metric/span name near-duplicating another
CFG002    config fields must be read; getattr reads must exist
CLI002    every declared CLI flag's dest must be consumed
========  ==========================================================

The SQL/SCHEMA/OBS002/CFG/CLI tier lives in
:mod:`repro.devtools.contract_rules`, driven by the contract database
:mod:`repro.devtools.contracts` extracts.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterator
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, ClassVar

from .context import ModuleContext
from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectModel

#: id → rule class; populated by ``Rule.__init_subclass__``.
_REGISTRY: dict[str, type["Rule"]] = {}


def all_rules() -> list["Rule"]:
    """One instance of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def expand_rule_patterns(
    patterns: "set[str] | frozenset[str]", strict: bool = True
) -> set[str]:
    """Expand ids and globs (``FLOW*``, ``DET00?``) against the registry.

    With ``strict`` (the default) a pattern matching nothing raises
    :class:`ValueError`, so typos fail loudly instead of silently
    selecting an empty ruleset.
    """
    known = rule_ids()
    selected: set[str] = set()
    for pattern in patterns:
        matched = [rule_id for rule_id in known if fnmatchcase(rule_id, pattern)]
        if not matched and strict:
            raise ValueError(f"unknown rule id or pattern: {pattern}")
        selected.update(matched)
    return selected


class Rule(abc.ABC):
    """Base class: subclassing with a ``rule_id`` self-registers."""

    rule_id: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    hint: ClassVar[str] = ""
    #: One-line description of the rule's family (the id prefix), shown
    #: as the group header by ``--list-rules``.  Families are discovered
    #: from the registry, so a new family self-registers its header by
    #: setting this on any member rule.
    family_description: ClassVar[str] = ""
    #: Dotted module prefixes the rule applies to; empty = everywhere.
    scopes: ClassVar[tuple[str, ...]] = ()
    #: Dotted module prefixes the rule never applies to.
    excludes: ClassVar[tuple[str, ...]] = ()
    #: Project rules analyze the whole program (call graph, taint)
    #: through :meth:`check_project` instead of per-module ``check``.
    requires_project: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.rule_id:
            existing = _REGISTRY.get(cls.rule_id)
            if existing is not None and existing is not cls:
                raise ValueError(f"duplicate rule id: {cls.rule_id}")
            _REGISTRY[cls.rule_id] = cls

    @staticmethod
    def _in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def applies_to(self, module: str) -> bool:
        """Whether the rule runs on a module with this dotted name."""
        if self._in_scope(module, self.excludes):
            return False
        return not self.scopes or self._in_scope(module, self.scopes)

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def check_project(self, project: "ProjectModel") -> Iterator[Finding]:
        """Yield findings needing the whole program (project rules only)."""
        return iter(())

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# ---------------------------------------------------------------------------
# DET001 — wall clocks and unseeded randomness in deterministic stages
# ---------------------------------------------------------------------------

#: Calls that inject wall-clock time or process-unique entropy.  The
#: monotonic clocks (``time.perf_counter``/``time.monotonic``) are
#: deliberately absent: they only ever feed telemetry durations.
_DET001_BANNED = {
    "time.time": "wall-clock timestamp",
    "time.time_ns": "wall-clock timestamp",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "random.random": "global unseeded RNG",
    "random.randint": "global unseeded RNG",
    "random.randrange": "global unseeded RNG",
    "random.randbytes": "global unseeded RNG",
    "random.getrandbits": "global unseeded RNG",
    "random.choice": "global unseeded RNG",
    "random.choices": "global unseeded RNG",
    "random.shuffle": "global unseeded RNG",
    "random.sample": "global unseeded RNG",
    "random.uniform": "global unseeded RNG",
    "random.gauss": "global unseeded RNG",
    "datetime.datetime.now": "wall-clock timestamp",
    "datetime.datetime.utcnow": "wall-clock timestamp",
    "datetime.datetime.today": "wall-clock timestamp",
    "datetime.date.today": "wall-clock timestamp",
}


class DeterministicClockRule(Rule):
    """DET001: Shift_f/Shift_r and the Dunning LLR scores (PAPER.md §3)
    must be byte-stable across runs, so the stages that produce them may
    not read wall clocks or the global RNG.  Seeded generators
    (``config.rng(namespace)``, ``random.Random(seed)``) are fine."""

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = "no wall clocks or unseeded randomness in deterministic stages"
    hint = (
        "derive randomness from ReproConfig.rng(namespace) and timestamps "
        "from the observability layer; monotonic telemetry clocks "
        "(time.perf_counter/time.monotonic) are allowed"
    )
    scopes = ("repro.core", "repro.extractors", "repro.resources")
    family_description = "determinism"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None:
                continue
            reason = _DET001_BANNED.get(qualified)
            if reason is not None:
                yield self.finding(
                    ctx, node, f"call to {qualified}() injects {reason}"
                )
            elif qualified == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed is nondeterministic",
                    hint="seed it: random.Random(config.seed) or config.rng(name)",
                )


# ---------------------------------------------------------------------------
# DET002 moved to repro.devtools.flow_rules (data-flow reimplementation)
# ---------------------------------------------------------------------------

#: Consumers whose result cannot depend on iteration order.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}
)


# ---------------------------------------------------------------------------
# PAR001 — process-pool payloads closing over unpicklables
# ---------------------------------------------------------------------------

#: Constructors whose results do not survive pickling to a worker.
_UNPICKLABLE = {
    "threading.Lock": "a lock",
    "threading.RLock": "a re-entrant lock",
    "threading.Condition": "a condition variable",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Event": "an event",
    "threading.local": "thread-local storage",
    "sqlite3.connect": "an open database connection",
}


class PicklablePayloadRule(Rule):
    """PAR001: anything submitted to the process-pool backend is
    pickled; :mod:`repro.parallel` chunk payloads are callables, so any
    class defining ``__call__`` that stores a lock, an open file, a
    connection, or a tracer handle on ``self`` must also define
    ``__getstate__`` to drop it (the pattern
    :class:`repro.db.resource_cache.PersistentResourceCache` uses)."""

    rule_id = "PAR001"
    severity = Severity.ERROR
    summary = "pool payloads must not close over locks/files/tracers"
    hint = (
        "drop the handle in __getstate__ and rebuild it in __setstate__ "
        "(see PersistentResourceCache), or keep it out of the payload"
    )
    family_description = "parallelism"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "__call__" not in methods or "__getstate__" in methods:
                continue
            yield from self._check_payload_class(ctx, node)

    def _check_payload_class(
        self, ctx: ModuleContext, cls_node: ast.ClassDef
    ) -> Iterator[Finding]:
        for node in ast.walk(cls_node):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                target
                for target in node.targets
                if isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ]
            if not targets:
                continue
            what = self._risky(ctx, node.value)
            if what is None:
                continue
            attrs = ", ".join(f"self.{target.attr}" for target in targets)
            yield self.finding(
                ctx,
                node,
                f"payload class {cls_node.name!r} (defines __call__) stores "
                f"{what} on {attrs} without a __getstate__",
            )

    @staticmethod
    def _risky(ctx: ModuleContext, value: ast.AST) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "an open file handle"
        qualified = ctx.resolve(func)
        if qualified is None:
            return None
        if qualified in _UNPICKLABLE:
            return _UNPICKLABLE[qualified]
        if "observability" in qualified and qualified.endswith(".Tracer"):
            return "a tracer handle"
        return None


# ---------------------------------------------------------------------------
# OBS001 — observability must stay no-op-safe in hot paths
# ---------------------------------------------------------------------------


class NoOpSafeObservabilityRule(Rule):
    """OBS001: instrumented hot paths go through the
    :class:`~repro.observability.Observability` bundle
    (``obs.tracer.span(...)`` is free when disabled) or the
    ``Span.begin(...)``/``span.finish()`` factory pair.  Constructing
    ``Span``/``Tracer`` directly outside :mod:`repro.observability`
    re-introduces per-call allocation — and a wall-clock read — even
    when observability is off."""

    rule_id = "OBS001"
    severity = Severity.WARNING
    summary = "construct spans/tracers via the no-op-safe bundle only"
    hint = (
        "use obs.tracer.span(name, **tags) or Span.begin(name, **tags) / "
        "span.finish(); direct Span()/Tracer() calls belong in "
        "repro.observability"
    )
    excludes = ("repro.observability", "repro.devtools")
    family_description = "observability"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None or "observability" not in qualified:
                continue
            final = qualified.rsplit(".", 1)[-1]
            if final in ("Span", "Tracer"):
                yield self.finding(
                    ctx,
                    node,
                    f"direct {final}(...) construction outside the "
                    "observability layer bypasses the no-op bundle",
                )


# ---------------------------------------------------------------------------
# CACHE001 — cache values must be immutable
# ---------------------------------------------------------------------------

#: Expressions that produce freshly mutable containers.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _mutable_kind(node: ast.AST) -> str | None:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    ):
        return f"a {node.func.id}"
    return None


class ImmutableCacheValueRule(Rule):
    """CACHE001: the PR-1 ``context_terms`` cache-poisoning bug, as a
    lint rule.  A value stored in :class:`PersistentResourceCache` or an
    LRU tier is shared by every later reader; storing a mutable
    container lets one caller's in-place edit corrupt everyone else's
    answer.  Store tuples, frozensets, or ``frozen=True`` dataclasses."""

    rule_id = "CACHE001"
    severity = Severity.ERROR
    summary = "cache entries must be immutable values"
    hint = (
        "convert before storing: tuple(...), frozenset(...), or a "
        "frozen dataclass — and return fresh copies to callers"
    )
    family_description = "cache hygiene"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_put(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_subscript_store(ctx, node)

    def _check_put(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "put",
            "_memory_put",
        ):
            return
        value = self._value_argument(node)
        if value is None:
            return
        kind = _mutable_kind(value)
        if kind is not None:
            yield self.finding(
                ctx,
                node,
                f"{func.attr}() stores {kind}; cache entries must be "
                "immutable (tuple/frozenset/frozen dataclass)",
            )

    @staticmethod
    def _value_argument(node: ast.Call) -> ast.AST | None:
        for keyword in node.keywords:
            if keyword.arg in ("terms", "value"):
                return keyword.value
        if node.args:
            return node.args[-1]
        return None

    def _check_subscript_store(
        self, ctx: ModuleContext, node: ast.Assign
    ) -> Iterator[Finding]:
        kind = _mutable_kind(node.value)
        if kind is None:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and "cache" in target.value.attr.lower()
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"assignment into {ast.unparse(target.value)}[...] stores "
                    f"{kind}; cache entries must be immutable",
                )


# ---------------------------------------------------------------------------
# API001 — complete annotations on the public API surface
# ---------------------------------------------------------------------------


class PublicApiAnnotationRule(Rule):
    """API001: the public entry points (``repro.api``, ``repro.config``,
    ``repro.core.pipeline``) are what users and the mypy gate read
    first; every public function and method there must annotate every
    parameter and its return type."""

    rule_id = "API001"
    severity = Severity.WARNING
    summary = "public API functions need complete type annotations"
    hint = "annotate every parameter and the return type"
    scopes = ("repro.api", "repro.config", "repro.core.pipeline")
    family_description = "public API hygiene"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_body(ctx, ctx.tree.body, method=False)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_body(ctx, node.body, method=True)

    def _check_body(
        self, ctx: ModuleContext, body: list[ast.stmt], method: bool
    ) -> Iterator[Finding]:
        for node in body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            public = not node.name.startswith("_") or node.name == "__init__"
            if not public:
                continue
            missing = self._missing_annotations(node, method)
            skip_return = node.name == "__init__"
            if node.returns is None and not skip_return:
                missing.append("return")
            if missing:
                yield self.finding(
                    ctx,
                    node,
                    f"public function {node.name!r} is missing type "
                    f"annotations for: {', '.join(missing)}",
                )

    @staticmethod
    def _missing_annotations(
        node: "ast.FunctionDef | ast.AsyncFunctionDef", method: bool
    ) -> list[str]:
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        if method and ordered and ordered[0].arg in ("self", "cls"):
            ordered = ordered[1:]
        ordered.extend(args.kwonlyargs)
        missing = [arg.arg for arg in ordered if arg.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        return missing


# ---------------------------------------------------------------------------
# CKPT001 — checkpoint writes must be atomic
# ---------------------------------------------------------------------------


class AtomicCheckpointWriteRule(Rule):
    """CKPT001: a crash during a plain ``open(path, "w")`` write leaves a
    half-written file that a resume would read as the latest state.  All
    file writes under :mod:`repro.incremental` must therefore go through
    :func:`repro.incremental.checkpoint.atomic_write_text` /
    ``atomic_write_json`` (temp file + fsync + ``os.replace``); the
    checkpoint module itself, which implements that helper, is the only
    exemption."""

    rule_id = "CKPT001"
    severity = Severity.ERROR
    summary = "incremental-state writes must use the atomic write helper"
    hint = (
        "write through atomic_write_text/atomic_write_json "
        "(repro.incremental.checkpoint): temp file + fsync + os.replace"
    )
    scopes = ("repro.incremental",)
    excludes = ("repro.incremental.checkpoint",)
    family_description = "checkpoint durability"

    #: ``open`` mode characters that create or truncate the target.
    _WRITE_MODES = ("w", "a", "x", "+")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and any(
                    ch in mode for ch in self._WRITE_MODES
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"open(..., {mode!r}) writes in place; a crash "
                        "mid-write leaves a torn file for resume to read",
                    )
            elif isinstance(func, ast.Attribute) and func.attr in (
                "write_text",
                "write_bytes",
            ):
                qualified = ctx.resolve(func)
                if qualified in (
                    "repro.incremental.checkpoint.atomic_write_text",
                    "repro.incremental.checkpoint.atomic_write_json",
                ):  # pragma: no cover - defensive; helpers are functions
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}(...) writes in place; a crash mid-write "
                    "leaves a torn file for resume to read",
                )

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        """The literal mode of an ``open`` call (None = default read)."""
        mode: ast.AST | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return None
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        # Dynamic mode expression: assume the worst.
        return "w"


# ---------------------------------------------------------------------------
# SRV001 — no blocking I/O inside async view handlers
# ---------------------------------------------------------------------------

#: Calls that stall the serving event loop when made from a coroutine.
_SRV001_BLOCKING = {
    "time.sleep": "sleeps on the event loop",
    "sqlite3.connect": "opens a database connection on the event loop",
    "urllib.request.urlopen": "does synchronous network I/O",
    "socket.create_connection": "does synchronous network I/O",
}


class NonBlockingAsyncViewRule(Rule):
    """SRV001: every request to the serving layer shares one event loop,
    so a single blocking call inside an ``async def`` view stalls all
    concurrent requests.  Backend queries must be dispatched through
    ``loop.run_in_executor`` under ``asyncio.wait_for`` (the
    :class:`repro.serving.app.FacetApp` pattern); per-request
    ``sqlite3.connect`` belongs in :class:`FacetIndex`'s thread-local
    connection pool, never in a view.  Synchronous helper functions are
    exempt — they already run on executor threads."""

    rule_id = "SRV001"
    severity = Severity.ERROR
    summary = "no blocking I/O inside async view handlers"
    hint = (
        "run blocking work on the executor: await asyncio.wait_for("
        "loop.run_in_executor(None, fn), timeout); open SQLite "
        "connections inside FacetIndex's thread-local pool"
    )
    scopes = ("repro.serving",)
    family_description = "serving/event-loop hygiene"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._walk_same_context(func):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            reason = _SRV001_BLOCKING.get(qualified or "")
            if reason is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualified}() inside async view "
                    f"{func.name!r} {reason}, stalling every in-flight "
                    "request",
                )

    @classmethod
    def _walk_same_context(cls, root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root``'s body without descending into nested defs.

        Nested ``async def``s are visited by the outer scan; nested sync
        ``def``s run on executor threads, where blocking is the point.
        """
        for child in ast.iter_child_nodes(root):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield child
            yield from cls._walk_same_context(child)


# Register the flow-aware rules (FLOW001/FLOW002/RACE001/DET002), the
# concurrency/lifecycle rules (ASYNC001-003/LEAK001/RACE002), and the
# contract drift rules (SQL001/SCHEMA001/OBS002/CFG002/CLI002); the
# imports are for their registration side effects.
from . import concurrency_rules, contract_rules, flow_rules  # noqa: E402,F401
