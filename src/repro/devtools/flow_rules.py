"""Flow-aware rules built on the project model, CFG, and taint engine.

========  ==============================================================
FLOW001   raw external-resource responses must be validated before any
          cache-write sink (``put``/``_memory_put``)
FLOW002   exceptions caught in resource/db paths must be re-raised,
          logged, or converted to a degrade event — no silent swallow
RACE001   module-level mutable state must not be mutated on a parallel
          worker path without lock evidence
DET002    (reimplemented) unordered set/dict-view iteration feeding
          ordered output, tracked through assignments via reaching
          definitions instead of per-line syntax
========  ==============================================================

FLOW001 and RACE001 need the whole program (method resolution, call
graph) and register as **project rules** (``requires_project = True``);
FLOW002 and DET002 are per-module and stay cacheable per file.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import replace
from typing import ClassVar

from .cfg import CFG
from .context import ModuleContext
from .dataflow import (
    Definition,
    ReachingDefinitions,
    assigned_names,
    pruned_walk,
    shallow_expressions,
)
from .findings import Finding, Fix, Severity
from .project import ProjectModel
from .rules import _ORDER_SAFE_CONSUMERS, Rule, _mutable_kind
from .taint import TaintEngine, TaintSpec

# ---------------------------------------------------------------------------
# FLOW001 — unvalidated resource responses reaching cache writes
# ---------------------------------------------------------------------------

#: The taint rule FLOW001 runs: raw fetch results (``*._query`` is the
#: per-resource fetch hook) must pass ``validate_context_terms`` before
#: any cache-write sink.  ``tuple()``/``sorted()``/comprehensions carry
#: taint through; the validator is the only sanitizer.
FLOW001_SPEC = TaintSpec(
    sources=("attr:_query",),
    sanitizers=(
        "attr:validate_context_terms",
        "*.validate_context_terms",
        "validate_context_terms",
    ),
    sinks=("attr:put", "attr:_memory_put"),
)


class UnvalidatedResourceFlowRule(Rule):
    """FLOW001: a raw response from a resource fetch (``_query`` and
    anything that returns one, e.g. ``_instrumented_query``) written
    into a cache poisons every later reader of that entry — across
    workers *and* across runs for the persistent tier.  Responses must
    pass :func:`repro.resources.base.validate_context_terms` (or a
    function of that name) on every path to a ``put``/``_memory_put``."""

    rule_id = "FLOW001"
    severity = Severity.ERROR
    summary = "resource responses must be validated before cache writes"
    hint = (
        "wrap the response: validate_context_terms(...) normalizes to an "
        "immutable tuple of clean strings before the value is cached"
    )
    scopes = ("repro.resources", "repro.db")
    requires_project: ClassVar[bool] = True
    family_description = "data-flow (taint) invariants"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        engine = TaintEngine(project, FLOW001_SPEC)
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not self.applies_to(info.module):
                continue
            ctx = project.context_for(info)
            for hit in engine.analyze_function(info):
                sink = ast.unparse(hit.node.func)
                yield self.finding(
                    ctx,
                    hit.node,
                    f"unvalidated resource response from {hit.source_label} "
                    f"reaches cache write {sink}()",
                )


# ---------------------------------------------------------------------------
# FLOW002 — no silent exception swallow in resource/db degrade paths
# ---------------------------------------------------------------------------

#: Attribute calls that count as structured logging.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical"}
)


class SilentSwallowRule(Rule):
    """FLOW002: the resilience design degrades, it never loses
    information — a caught exception must be re-raised, logged through
    the observability layer, recorded for later handling, or converted
    into an explicit degrade event.  An ``except: pass`` in a resource
    or cache path turns an outage into silently-wrong results."""

    rule_id = "FLOW002"
    severity = Severity.ERROR
    summary = "caught exceptions must be re-raised, logged, or degraded"
    hint = (
        "re-raise, call log.warning/error(...), self._degrade(exc), or "
        "store the exception for the caller; never swallow silently"
    )
    scopes = ("repro.resources", "repro.db")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handler_is_accounted(node):
                continue
            caught = ast.unparse(node.type) if node.type is not None else "everything"
            yield self.finding(
                ctx,
                node,
                f"handler for {caught} swallows the exception silently "
                "(no re-raise, log, or degrade on any path)",
            )

    @classmethod
    def _handler_is_accounted(cls, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in cls._walk_handler(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr in _LOG_METHODS:
                        return True
                    if "degrade" in func.attr.lower():
                        return True
                elif isinstance(func, ast.Name) and "degrade" in func.id.lower():
                    return True
            if bound is not None and isinstance(node, ast.Assign):
                # ``last_error = exc``: captured for later handling.
                if any(
                    isinstance(ref, ast.Name) and ref.id == bound
                    for ref in ast.walk(node.value)
                ):
                    return True
        return False

    @staticmethod
    def _walk_handler(handler: ast.ExceptHandler) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RACE001 — shared mutable state on worker paths
# ---------------------------------------------------------------------------

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: Dotted suffixes of functions that fan work out to a pool.
_POOL_ENTRYPOINTS = (".map_chunks", ".parallel_map")


class WorkerSharedStateRule(Rule):
    """RACE001: worker payloads run concurrently (threads) or in other
    processes; a module-level list/dict/set they mutate is a data race
    on the thread backend and silently-divergent state on the process
    backend — both break the deterministic-merge contract.  Guard the
    mutation with a lock (``with ..lock..:``) or make the state
    immutable/worker-local."""

    rule_id = "RACE001"
    severity = Severity.ERROR
    summary = "no unguarded module-level mutation on worker paths"
    hint = (
        "hold a lock around the mutation, pass state through the chunk "
        "payload instead, or make the module value immutable"
    )
    excludes = ("repro.devtools",)
    requires_project: ClassVar[bool] = True
    family_description = "shared-state safety"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        globals_by_name = self._module_level_mutables(project)
        if not globals_by_name:
            return
        provenance = self._reachable_from_payloads(project)
        for qualname in sorted(provenance):
            info = project.functions.get(qualname)
            if info is None or not self.applies_to(info.module):
                continue
            ctx = project.context_for(info)
            yield from self._check_function(
                project, ctx, info, globals_by_name, provenance[qualname]
            )

    # -- shared-state registry ---------------------------------------------------

    @staticmethod
    def _module_level_mutables(project: ProjectModel) -> "dict[str, str]":
        """``module.name`` -> kind for every module-level mutable binding."""
        registry: dict[str, str] = {}
        for module, ctx in project.modules.items():
            for stmt in ctx.tree.body:
                targets: list[ast.expr] = []
                value: "ast.expr | None" = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if value is None:
                    continue
                kind = _mutable_kind(value)
                if kind is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        registry[f"{module}.{target.id}"] = kind
        return registry

    # -- payload roots and reachability ------------------------------------------

    def _payload_roots(self, project: ProjectModel) -> "list[str]":
        roots: set[str] = set()
        # 1. __call__ of classes defined in a parallel module.
        for cls_info in project.classes.values():
            last = cls_info.module.rsplit(".", 1)[-1]
            if last == "parallel" and "__call__" in cls_info.methods:
                roots.add(cls_info.methods["__call__"].qualname)
        # 2. First argument of pool fan-out calls.
        for info in project.functions.values():
            ctx = project.context_for(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if not self._is_pool_entrypoint(project, ctx, node):
                    continue
                payload = node.args[0]
                target: "str | None" = None
                if isinstance(payload, ast.Call):
                    resolved = project.resolve_call(info, payload)
                    if resolved is not None and resolved.name == "__init__":
                        class_qualname = resolved.qualname.rsplit(".", 1)[0]
                        method = project.lookup_method(class_qualname, "__call__")
                        if method is not None:
                            target = method.qualname
                    elif resolved is not None:
                        target = resolved.qualname
                else:
                    qualified = project.resolve_symbol(ctx, payload)
                    if qualified in project.functions:
                        target = qualified
                    elif qualified in project.classes:
                        method = project.lookup_method(qualified, "__call__")
                        if method is not None:
                            target = method.qualname
                if target is not None:
                    roots.add(target)
        return sorted(roots)

    @staticmethod
    def _is_pool_entrypoint(
        project: ProjectModel, ctx: ModuleContext, node: ast.Call
    ) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            return True
        qualified = project.resolve_symbol(ctx, func)
        if qualified is None:
            return False
        return any(
            qualified.endswith(suffix) or qualified == suffix[1:]
            for suffix in _POOL_ENTRYPOINTS
        )

    def _reachable_from_payloads(self, project: ProjectModel) -> "dict[str, str]":
        """function qualname -> the payload root it is reachable from."""
        provenance: dict[str, str] = {}
        for root in self._payload_roots(project):
            for reached in sorted(project.reachable([root])):
                provenance.setdefault(reached, root)
        return provenance

    # -- mutation scan -----------------------------------------------------------

    def _check_function(
        self,
        project: ProjectModel,
        ctx: ModuleContext,
        info,
        registry: "dict[str, str]",
        root: str,
    ) -> Iterator[Finding]:
        local_names = assigned_names(info.node.body)
        declared_global: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        parents: dict[int, ast.AST] = {}
        for parent in ast.walk(info.node):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent

        def resolve_shared(base: ast.expr) -> "str | None":
            """``module.name`` key when ``base`` refers to a registered
            module-level mutable (bare global or imported attribute)."""
            if isinstance(base, ast.Name):
                name = base.id
                if name in local_names and name not in declared_global:
                    return None
                key = f"{info.module}.{name}" if info.module else name
                return key if key in registry else None
            qualified = project.resolve_symbol(ctx, base)
            if qualified is not None and qualified in registry:
                return qualified
            return None

        def under_lock(node: ast.AST) -> bool:
            current = parents.get(id(node))
            while current is not None:
                if isinstance(current, (ast.With, ast.AsyncWith)):
                    for item in current.items:
                        if "lock" in ast.unparse(item.context_expr).lower():
                            return True
                current = parents.get(id(current))
            return False

        for node in ast.walk(info.node):
            shared: "str | None" = None
            what = ""
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                shared = resolve_shared(node.func.value)
                what = f".{node.func.attr}(...)"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        shared = shared or resolve_shared(target.value)
                        what = "[...] = ..."
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        key = (
                            f"{info.module}.{target.id}"
                            if info.module
                            else target.id
                        )
                        if key in registry:
                            shared = shared or key
                            what = "rebinding"
            if shared is None or under_lock(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{registry[shared]} {shared!r} mutated ({what}) on a "
                f"worker path reachable from {root} without a lock",
            )


# ---------------------------------------------------------------------------
# DET002 — unordered iteration feeding ordered output (data-flow form)
# ---------------------------------------------------------------------------

#: Set-combining methods whose result is itself unordered.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Loop-body operations whose result depends on iteration order.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"append", "extend", "insert", "write", "writelines", "appendleft"}
)

#: Ordered-container conversions that freeze iteration order.
_ORDERING_CONVERSIONS = frozenset({"list", "tuple"})


class UnorderedIterationRule(Rule):
    """DET002: iterating a ``set`` (hash order, varies with
    PYTHONHASHSEED) or a bare dict view and feeding the result into
    ordered output breaks byte-stability.  This data-flow version
    tracks unordered-ness through assignments with reaching
    definitions, so ``s = sorted(s)`` launders the taint on every path
    that rebinds it, aliases (``t = s``) stay tainted, and a ``for``
    over a set whose body never produces ordered output is clean."""

    rule_id = "DET002"
    severity = Severity.WARNING
    summary = "no unordered set/dict-view iteration feeding ordered output"
    hint = (
        "wrap the iterable in sorted(...), or add '# order: <reason>' "
        "on (or above) the line when insertion order is provably stable"
    )
    scopes = ("repro.core",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, CFG.from_statements(ctx.tree.body), None)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, CFG.from_function(node), node)

    # -- per-scope analysis ------------------------------------------------------

    def _check_scope(
        self,
        ctx: ModuleContext,
        cfg: CFG,
        func: "ast.FunctionDef | ast.AsyncFunctionDef | None",
    ) -> Iterator[Finding]:
        rd = ReachingDefinitions(cfg)
        unordered = self._unordered_definitions(rd)

        for block_id, stmt in rd.iter_statements():
            env = None  # computed lazily per statement

            def is_unordered(expr: ast.AST) -> bool:
                nonlocal env
                if env is None:
                    env = rd.reaching_at(block_id, stmt)
                return self._expr_unordered(expr, env, unordered)

            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                if (
                    is_unordered(stmt.iter)
                    and self._body_is_order_sensitive(stmt.body)
                    and not ctx.has_ordering_comment(stmt.lineno)
                ):
                    yield self._flag(ctx, stmt, stmt.iter)
            for node in self._walk_shallow(stmt):
                if isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    if self._consumer_is_safe(ctx, node):
                        continue
                    for generator in node.generators:
                        if is_unordered(generator.iter) and not ctx.has_ordering_comment(
                            node.lineno
                        ):
                            yield self._flag(ctx, node, generator.iter)
                            break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDERING_CONVERSIONS
                    and len(node.args) == 1
                    and not node.keywords
                ):
                    if (
                        is_unordered(node.args[0])
                        and not self._consumer_is_safe(ctx, node)
                        and not ctx.has_ordering_comment(node.lineno)
                    ):
                        yield self._flag(ctx, node, node.args[0])
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and len(node.args) == 1
                ):
                    if is_unordered(node.args[0]) and not ctx.has_ordering_comment(
                        node.lineno
                    ):
                        yield self._flag(ctx, node, node.args[0])

    def _flag(self, ctx: ModuleContext, site: ast.AST, iterable: ast.AST) -> Finding:
        try:
            rendered = ast.unparse(iterable)
        except Exception:  # pragma: no cover
            rendered = "<iterable>"
        finding = self.finding(
            ctx,
            site,
            "iteration order of an unordered collection leaks into "
            f"ordered output ({rendered})",
        )
        fix = self._sorted_fix(iterable, rendered)
        if fix is not None:
            finding = replace(finding, fix=fix)
        return finding

    @staticmethod
    def _sorted_fix(iterable: ast.AST, rendered: str) -> "Fix | None":
        end_line = getattr(iterable, "end_lineno", None)
        end_col = getattr(iterable, "end_col_offset", None)
        if end_line is None or end_col is None:
            return None  # pragma: no cover - all real exprs carry spans
        return Fix(
            start_line=iterable.lineno,
            start_col=iterable.col_offset,
            end_line=end_line,
            end_col=end_col,
            replacement=f"sorted({rendered})",
        )

    # -- unordered-ness classification -------------------------------------------

    def _unordered_definitions(self, rd: ReachingDefinitions) -> "set[Definition]":
        """Fixed point over definitions whose bound value is an
        unordered collection at the point of binding."""
        entries: list[tuple[Definition, dict[str, list[Definition]]]] = []
        for block_id, stmt in rd.iter_statements():
            indices = rd.indices_for(block_id, stmt)
            if not indices:
                continue
            env = rd.reaching_at(block_id, stmt)
            for index in indices:
                entries.append((rd.definition(index), env))
        unordered: set[Definition] = set()
        changed = True
        while changed:
            changed = False
            for definition, env in entries:
                if definition in unordered:
                    continue
                if self._definition_unordered(definition, env, unordered):
                    unordered.add(definition)
                    changed = True
        return unordered

    def _definition_unordered(
        self,
        definition: Definition,
        env: "dict[str, list[Definition]]",
        unordered: "set[Definition]",
    ) -> bool:
        node = definition.node
        if isinstance(node, ast.AnnAssign):
            annotation = ast.unparse(node.annotation).split("[", 1)[0]
            if annotation in ("set", "frozenset", "Set", "FrozenSet"):
                return True
        if definition.value is None:
            return False
        if isinstance(node, ast.AugAssign):
            # ``s |= {...}`` / ``s += xs`` keeps the old character.
            if any(
                prior in unordered for prior in env.get(definition.name, [])
            ):
                return True
        return self._expr_unordered(definition.value, env, unordered)

    def _expr_unordered(
        self,
        node: ast.AST,
        env: "dict[str, list[Definition]]",
        unordered: "set[Definition]",
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(
                definition in unordered for definition in env.get(node.id, [])
            )
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._expr_unordered(node.left, env, unordered) or (
                self._expr_unordered(node.right, env, unordered)
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if (
                    func.attr in ("keys", "values")
                    and not node.args
                    and not node.keywords
                ):
                    return True
                if func.attr in _SET_METHODS and self._expr_unordered(
                    func.value, env, unordered
                ):
                    return True
        return False

    # -- consumers and loop bodies -----------------------------------------------

    def _consumer_is_safe(self, ctx: ModuleContext, node: ast.AST) -> bool:
        parent = ctx.parent(node)
        if parent is None:
            # Synthetic CFG wrapper (e.g. an if-test Expr) — find the
            # real parent through the original tree is impossible here;
            # treat as unsafe, the ordering comment remains available.
            return False
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_SAFE_CONSUMERS
        )

    @classmethod
    def _body_is_order_sensitive(cls, body: "list[ast.stmt]") -> bool:
        for stmt in body:
            for node in pruned_walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_CALLS
                ):
                    return True
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if any(
                        isinstance(target, ast.Subscript) for target in targets
                    ):
                        return True
                    if isinstance(node, ast.AugAssign):
                        return True
        return False

    @staticmethod
    def _walk_shallow(stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expressions of one statement without descending into nested
        function bodies or compound-statement bodies (those appear as
        their own CFG statements)."""
        for root in shallow_expressions(stmt):
            yield from pruned_walk(root)
