"""Whole-program project model: symbol table and cross-module call graph.

PR 3's analyzer saw one module at a time, so every invariant it checked
had to be visible in a single file.  The flow rules need more: "is this
``self._instrumented_query`` call the method defined 40 lines up?",
"which functions can a parallel worker payload reach?".  This module
parses the whole tree **once** into:

* a module table (dotted name → :class:`~repro.devtools.context.ModuleContext`),
* a symbol table of functions, methods, and classes keyed by qualified
  name (``repro.resources.base.ExternalResource.context_terms``),
* a conservative **call graph**: for every function, the set of project
  functions its calls could resolve to.

Resolution strategy (purely static, never imports the analyzed code):

1. bare names — a function defined in the same module, else whatever
   the module's :class:`~repro.devtools.imports.ImportTracker` binds;
2. dotted names whose head is an import binding (``parallel.map_chunks``);
3. ``self.method()`` / ``cls.method()`` inside a class body — resolved
   against the class and its project-local base classes (nearest
   definition wins, mirroring the MRO for single inheritance);
4. ``ClassName(...)`` — an edge to ``ClassName.__init__`` when the
   class is in the project.

Unresolvable calls (higher-order values, ``getattr`` tricks, foreign
libraries) produce no edge; rules treat absence of an edge as "unknown",
never as proof of safety or guilt.

The call graph is **concurrency-aware** (PR 8): every edge carries a
:class:`CallEdge` record with the *kind* of control transfer —

``direct``
    an ordinary call (or an awaited coroutine call): the callee runs on
    the caller's thread, and, inside a coroutine, on the event loop;
``executor``
    the callee is handed to a pool — ``loop.run_in_executor(...)``,
    ``asyncio.to_thread(...)``, ``executor.submit(...)`` — and runs on
    a worker thread, *off* the event loop;
``thread``
    the callee is a thread entry point: ``threading.Thread(target=f)``
    or a ``run_in_thread(f)``-style helper.

The async rules (ASYNC001/RACE002) walk ``direct`` edges to decide what
runs on the loop and treat ``executor``/``thread`` edges as hops onto
worker threads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .context import ModuleContext, infer_module_name

__all__ = ["CallEdge", "FunctionInfo", "ClassInfo", "ProjectModel"]

#: :attr:`CallEdge.kind` values.
EDGE_DIRECT = "direct"
EDGE_EXECUTOR = "executor"
EDGE_THREAD = "thread"

#: Dotted-name suffixes of helpers that run their first argument on a
#: dedicated thread (the serving bridge's ``run_in_thread`` pattern).
_THREAD_HELPERS = (".run_in_thread",)


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller → callee edge.

    ``kind`` says how control transfers (module constants
    ``EDGE_DIRECT``/``EDGE_EXECUTOR``/``EDGE_THREAD``); ``awaited`` is
    True for ``await f(...)`` call sites; ``line`` is the call site's
    line in the caller's module.
    """

    callee: str
    kind: str
    line: int
    awaited: bool = False


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: "str | None" = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_async(self) -> bool:
        """True for ``async def`` (coroutine) functions."""
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class definition with its methods and resolvable bases."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Qualified names of base classes (project-local or imported).
    bases: "tuple[str, ...]" = ()


class ProjectModel:
    """Symbol table + call graph over a set of modules."""

    def __init__(self, contexts: "list[ModuleContext]") -> None:
        #: dotted module name -> context
        self.modules: dict[str, ModuleContext] = {}
        #: qualified name -> FunctionInfo (functions and methods)
        self.functions: dict[str, FunctionInfo] = {}
        #: qualified name -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        #: module name -> {local top-level symbol -> qualified name}
        self._module_symbols: dict[str, dict[str, str]] = {}
        for ctx in contexts:
            self._index_module(ctx)
        self._resolve_bases()
        #: caller qualname -> frozenset of callee qualnames
        self._calls: dict[str, frozenset[str]] = {}
        #: caller qualname -> ordered CallEdge records (kind-aware)
        self._edges: dict[str, tuple[CallEdge, ...]] = {}
        #: caller qualname -> tuple of unresolved callee expressions
        self._unresolved: dict[str, tuple[str, ...]] = {}
        for info in self.functions.values():
            self._index_calls(info)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_paths(cls, paths: "list[str | Path]") -> "ProjectModel":
        """Parse every ``*.py`` under ``paths`` (files or trees).

        Files that fail to parse are skipped — the per-module pass
        already reports them as ``PARSE`` findings.
        """
        contexts: list[ModuleContext] = []
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        for file_path in files:
            try:
                contexts.append(ModuleContext.from_file(file_path))
            except (OSError, SyntaxError):
                continue
        return cls(contexts)

    def _index_module(self, ctx: ModuleContext) -> None:
        module = ctx.module or infer_module_name(ctx.path)
        self.modules[module] = ctx
        symbols: dict[str, str] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{stmt.name}" if module else stmt.name
                info = FunctionInfo(qualname=qualname, module=module, node=stmt)
                self.functions[qualname] = info
                symbols[stmt.name] = qualname
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{module}.{stmt.name}" if module else stmt.name
                cls_info = ClassInfo(qualname=qualname, module=module, node=stmt)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qualname = f"{qualname}.{item.name}"
                        method = FunctionInfo(
                            qualname=method_qualname,
                            module=module,
                            node=item,
                            class_name=stmt.name,
                        )
                        self.functions[method_qualname] = method
                        cls_info.methods[item.name] = method
                self.classes[qualname] = cls_info
                symbols[stmt.name] = qualname
        self._module_symbols[module] = symbols

    def _resolve_bases(self) -> None:
        for cls_info in self.classes.values():
            ctx = self.modules[cls_info.module]
            bases: list[str] = []
            for base in cls_info.node.bases:
                resolved = self.resolve_symbol(ctx, base)
                if resolved is not None:
                    bases.append(resolved)
            cls_info.bases = tuple(bases)

    # -- symbol resolution ------------------------------------------------------

    def resolve_symbol(self, ctx: ModuleContext, node: ast.AST) -> "str | None":
        """Qualified name of a Name/Attribute chain: module-local
        symbols first, then the module's import bindings."""
        if isinstance(node, ast.Name):
            local = self._module_symbols.get(ctx.module, {}).get(node.id)
            if local is not None:
                return local
        return ctx.resolve(node)

    def lookup_method(self, class_qualname: str, method: str) -> "FunctionInfo | None":
        """Find ``method`` on a class or its project-local bases."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method]
            queue.extend(cls_info.bases)
        return None

    def enclosing_class(self, info: FunctionInfo) -> "ClassInfo | None":
        if info.class_name is None:
            return None
        return self.classes.get(f"{info.module}.{info.class_name}")

    # -- call graph -------------------------------------------------------------

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> "FunctionInfo | None":
        """The project function a call statically resolves to, if any."""
        ctx = self.modules.get(caller.module)
        if ctx is None:
            return None
        func = call.func
        # self.method() / cls.method()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            return self.lookup_method(
                f"{caller.module}.{caller.class_name}", func.attr
            )
        qualified = self.resolve_symbol(ctx, func)
        if qualified is None:
            return None
        if qualified in self.functions:
            return self.functions[qualified]
        if qualified in self.classes:
            init = self.lookup_method(qualified, "__init__")
            if init is not None:
                return init
        return None

    def _callable_target(
        self, caller: FunctionInfo, node: ast.expr
    ) -> "FunctionInfo | None":
        """Resolve a *callable reference* (not a call): ``helper``,
        ``self.method``, ``module.helper``, ``partial(helper, ...)``,
        ``ClassName`` (→ ``__call__`` else ``__init__``)."""
        ctx = self.modules.get(caller.module)
        if ctx is None:
            return None
        # functools.partial(fn, ...) wraps fn; unwrap one level.
        if isinstance(node, ast.Call):
            qualified = self.resolve_symbol(ctx, node.func)
            if qualified == "functools.partial" and node.args:
                return self._callable_target(caller, node.args[0])
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            return self.lookup_method(
                f"{caller.module}.{caller.class_name}", node.attr
            )
        qualified = self.resolve_symbol(ctx, node)
        if qualified is None:
            return None
        if qualified in self.functions:
            return self.functions[qualified]
        if qualified in self.classes:
            for method in ("__call__", "__init__"):
                found = self.lookup_method(qualified, method)
                if found is not None:
                    return found
        return None

    def _dispatch_target(
        self, caller: FunctionInfo, call: ast.Call
    ) -> "tuple[FunctionInfo, str] | None":
        """``(target, edge kind)`` when ``call`` hands a callable to an
        executor or a thread instead of invoking it in place."""
        ctx = self.modules.get(caller.module)
        if ctx is None:
            return None
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        # loop.run_in_executor(executor, fn, *args)
        if attr == "run_in_executor" and len(call.args) >= 2:
            target = self._callable_target(caller, call.args[1])
            if target is not None:
                return target, EDGE_EXECUTOR
            return None
        # executor.submit(fn, *args)
        if attr == "submit" and call.args:
            target = self._callable_target(caller, call.args[0])
            if target is not None:
                return target, EDGE_EXECUTOR
            return None
        qualified = self.resolve_symbol(ctx, func)
        # asyncio.to_thread(fn, *args)
        if qualified == "asyncio.to_thread" and call.args:
            target = self._callable_target(caller, call.args[0])
            if target is not None:
                return target, EDGE_EXECUTOR
            return None
        # threading.Thread(target=fn)
        if qualified == "threading.Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target = self._callable_target(caller, keyword.value)
                    if target is not None:
                        return target, EDGE_THREAD
            return None
        # run_in_thread(fn, ...)-style helpers
        if qualified is not None and (
            any(qualified.endswith(s) for s in _THREAD_HELPERS)
            or qualified == "run_in_thread"
        ):
            if call.args:
                target = self._callable_target(caller, call.args[0])
                if target is not None:
                    return target, EDGE_THREAD
            return None
        return None

    def _index_calls(self, info: FunctionInfo) -> None:
        edges: list[CallEdge] = []
        seen: set[str] = set()
        unresolved: list[str] = []
        awaited_calls = {
            id(node.value)
            for node in ast.walk(info.node)
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
        }
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dispatched = self._dispatch_target(info, node)
            if dispatched is not None:
                target, kind = dispatched
                edges.append(
                    CallEdge(
                        callee=target.qualname,
                        kind=kind,
                        line=node.lineno,
                        awaited=id(node) in awaited_calls,
                    )
                )
                seen.add(target.qualname)
                continue
            resolved = self.resolve_call(info, node)
            if resolved is not None:
                edges.append(
                    CallEdge(
                        callee=resolved.qualname,
                        kind=EDGE_DIRECT,
                        line=node.lineno,
                        awaited=id(node) in awaited_calls,
                    )
                )
                seen.add(resolved.qualname)
            else:
                try:
                    unresolved.append(ast.unparse(node.func))
                except Exception:  # pragma: no cover - unparse edge case
                    unresolved.append("<?>")
        self._calls[info.qualname] = frozenset(seen)
        self._edges[info.qualname] = tuple(edges)
        self._unresolved[info.qualname] = tuple(unresolved)

    def callees(self, qualname: str) -> frozenset[str]:
        return self._calls.get(qualname, frozenset())

    def call_edges(self, qualname: str) -> "tuple[CallEdge, ...]":
        """Kind-aware edges out of ``qualname`` in call-site order."""
        return self._edges.get(qualname, ())

    # -- concurrency views --------------------------------------------------------

    def async_functions(self) -> "list[str]":
        """Qualnames of every ``async def``, sorted."""
        return sorted(
            qualname
            for qualname, info in self.functions.items()
            if info.is_async
        )

    def dispatch_targets(self, kinds: "tuple[str, ...]" = (EDGE_EXECUTOR, EDGE_THREAD)) -> "set[str]":
        """Functions handed to an executor or thread anywhere in the
        project — the roots of worker-thread call paths."""
        targets: set[str] = set()
        for edges in self._edges.values():
            for edge in edges:
                if edge.kind in kinds:
                    targets.add(edge.callee)
        return targets

    def reachable_via(
        self, roots: "list[str] | set[str]", kinds: "tuple[str, ...]" = (EDGE_DIRECT,)
    ) -> "dict[str, tuple[str, ...]]":
        """Functions reachable from ``roots`` following only edges of
        the given kinds; maps each reached qualname to its shortest
        call path ``(root, ..., qualname)``.  Deterministic: roots and
        neighbours are visited in sorted order (BFS, first path wins).
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            succ = sorted(
                {
                    edge.callee
                    for edge in self._edges.get(current, ())
                    if edge.kind in kinds
                }
            )
            for callee in succ:
                if callee in paths:
                    continue
                paths[callee] = paths[current] + (callee,)
                queue.append(callee)
        return paths

    def unresolved_calls(self, qualname: str) -> "tuple[str, ...]":
        return self._unresolved.get(qualname, ())

    def reachable(self, roots: "list[str]") -> "set[str]":
        """Every function reachable from ``roots`` via resolved edges
        (roots included when they exist in the project)."""
        seen: set[str] = set()
        queue = [root for root in roots if root in self.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._calls.get(current, frozenset()))
        return seen

    # -- summaries used by the taint engine --------------------------------------

    def context_for(self, info: FunctionInfo) -> ModuleContext:
        return self.modules[info.module]
