"""Concurrency- and lifecycle-aware rules (the PR-8 engine layer).

========  ==============================================================
ASYNC001  blocking call *transitively* reachable from an async view
          without an executor/thread hop — the interprocedural form of
          syntactic SRV001, which only sees the call written directly
          inside the coroutine
ASYNC002  coroutine called but the returned awaitable is discarded —
          the body never runs, the classic missing-``await``
ASYNC003  ``await`` while holding a synchronous ``threading.Lock`` —
          the lock blocks every other loop task until resumption
LEAK001   acquired resource (connection/file/socket/executor/temp
          file) not closed on some CFG path, exception edges included;
          ``--fix`` wraps the acquisition in ``with``/``closing``
RACE002   shared mutable instance attribute reached from both the
          asyncio event loop and worker-thread call paths without a
          lock — RACE001 generalized beyond module globals
========  ==============================================================

ASYNC001/ASYNC002/RACE002 need the kind-aware call graph
(:class:`~repro.devtools.project.ProjectModel.call_edges`) and register
as **project rules**; ASYNC003 and LEAK001 are per-module and stay
cacheable per file.  The interprocedural rules attach a
:class:`~repro.devtools.findings.TraceStep` chain so SARIF consumers
render the whole path (``codeFlows``), not just the endpoint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import replace
from typing import ClassVar

from .context import ModuleContext
from .findings import Finding, Fix, Severity, TraceStep
from .lifecycle import Leak, LifecycleAnalysis
from .project import EDGE_DIRECT, FunctionInfo, ProjectModel
from .rules import _SRV001_BLOCKING, NonBlockingAsyncViewRule, Rule

# ---------------------------------------------------------------------------
# ASYNC001 — blocking call transitively reachable from a coroutine
# ---------------------------------------------------------------------------

#: Blocking calls the event loop must never make — SRV001's syntactic
#: set plus the process-spawning and shell waits an executor hop makes
#: harmless.  ``open`` is deliberately absent: flagging every config
#: read at startup would drown the real findings.
_ASYNC001_BLOCKING: dict[str, str] = {
    **_SRV001_BLOCKING,
    "subprocess.run": "waits on a child process",
    "subprocess.call": "waits on a child process",
    "subprocess.check_call": "waits on a child process",
    "subprocess.check_output": "waits on a child process",
    "os.system": "waits on a shell",
    "urllib.request.urlretrieve": "does synchronous network I/O",
}


def _short(qualname: str) -> str:
    """Last two dotted components — readable in one-line messages."""
    return ".".join(qualname.rsplit(".", 2)[-2:])


class TransitiveBlockingCallRule(Rule):
    """ASYNC001: one event loop serves every request; a blocking call
    stalls them all no matter how many synchronous helpers deep it
    hides.  This rule walks the kind-aware call graph from every
    ``async def``, following only *direct* edges — an executor or
    thread dispatch (``run_in_executor``/``to_thread``/``submit``/
    ``threading.Thread``/``run_in_thread``) legitimately moves the work
    off-loop and ends the traversal.  SRV001 remains as the fast
    syntactic tier for calls written directly inside serving views."""

    rule_id = "ASYNC001"
    severity = Severity.ERROR
    summary = "no blocking call transitively reachable from a coroutine"
    hint = (
        "dispatch the blocking helper through the executor: await "
        "asyncio.wait_for(loop.run_in_executor(None, fn), timeout) — or "
        "make the whole chain async"
    )
    requires_project: ClassVar[bool] = True
    family_description = "asyncio/event-loop safety"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        roots = project.async_functions()
        if not roots:
            return
        paths = project.reachable_via(roots, kinds=(EDGE_DIRECT,))
        reported: set[tuple[str, int, int]] = set()
        for qualname in sorted(paths):
            info = project.functions[qualname]
            if not self.applies_to(info.module):
                continue
            ctx = project.context_for(info)
            for node in NonBlockingAsyncViewRule._walk_same_context(info.node):
                if not isinstance(node, ast.Call):
                    continue
                qualified = ctx.resolve(node.func)
                reason = _ASYNC001_BLOCKING.get(qualified or "")
                if reason is None:
                    continue
                key = (ctx.path, node.lineno, node.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                chain = paths[qualname]
                yield replace(
                    self.finding(
                        ctx,
                        node,
                        f"{qualified}() {reason}; it runs on the event loop "
                        f"because coroutine {_short(chain[0])!r} reaches it "
                        f"via {' -> '.join(_short(q) for q in chain)} with "
                        "no executor hop",
                    ),
                    trace=self._trace(project, chain, ctx.path, node, qualified),
                )

    @staticmethod
    def _trace(
        project: ProjectModel,
        chain: "tuple[str, ...]",
        blocking_path: str,
        blocking_node: ast.Call,
        qualified: "str | None",
    ) -> "tuple[TraceStep, ...]":
        steps: list[TraceStep] = []
        root_info = project.functions[chain[0]]
        steps.append(
            TraceStep(
                path=project.context_for(root_info).path,
                line=root_info.node.lineno,
                message=f"coroutine {_short(chain[0])} runs on the event loop",
            )
        )
        for caller, callee in zip(chain, chain[1:]):
            edge_line = next(
                (
                    edge.line
                    for edge in project.call_edges(caller)
                    if edge.callee == callee and edge.kind == EDGE_DIRECT
                ),
                project.functions[caller].node.lineno,
            )
            steps.append(
                TraceStep(
                    path=project.context_for(project.functions[caller]).path,
                    line=edge_line,
                    message=f"{_short(caller)} calls {_short(callee)}",
                )
            )
        steps.append(
            TraceStep(
                path=blocking_path,
                line=blocking_node.lineno,
                message=f"{qualified}() blocks the event loop",
            )
        )
        return tuple(steps)


# ---------------------------------------------------------------------------
# ASYNC002 — coroutine called but never awaited or scheduled
# ---------------------------------------------------------------------------


class UnawaitedCoroutineRule(Rule):
    """ASYNC002: calling an ``async def`` builds a coroutine object; if
    the result is discarded as a bare expression statement the body
    never executes and CPython only complains — at best — with a
    runtime "never awaited" warning nobody reads in production logs.
    Awaiting, assigning, returning, or handing the coroutine to a
    scheduler (``create_task``/``gather``/...) all count as consumed;
    only the provably-dropped case is flagged, keeping false positives
    at zero."""

    rule_id = "ASYNC002"
    severity = Severity.ERROR
    summary = "coroutine result must be awaited or scheduled, not dropped"
    hint = (
        "await it, or hand it to the loop: asyncio.create_task(coro()) / "
        "asyncio.gather(...) — a bare call never runs the body"
    )
    requires_project: ClassVar[bool] = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not self.applies_to(info.module):
                continue
            ctx = project.context_for(info)
            for node in NonBlockingAsyncViewRule._walk_same_context(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = project.resolve_call(info, node)
                if resolved is None or not resolved.is_async:
                    continue
                parent = ctx.parent(node)
                if isinstance(parent, ast.Expr):
                    yield self.finding(
                        ctx,
                        node,
                        f"coroutine {_short(resolved.qualname)}() is called "
                        "but its result is discarded — the body never runs",
                    )


# ---------------------------------------------------------------------------
# ASYNC003 — await while holding a synchronous lock
# ---------------------------------------------------------------------------


class AwaitUnderSyncLockRule(Rule):
    """ASYNC003: a ``with self._lock:`` block inside a coroutine holds a
    *thread* lock across any ``await`` in its body; every other task
    that touches the same lock then blocks the loop thread itself — the
    one-line recipe for a convoyed or deadlocked server.  Either keep
    the critical section await-free, or switch to ``asyncio.Lock`` with
    ``async with``."""

    rule_id = "ASYNC003"
    severity = Severity.ERROR
    summary = "no await while holding a synchronous threading lock"
    hint = (
        "move the await outside the critical section, or use "
        "asyncio.Lock with 'async with' — threading locks must never "
        "span a suspension point"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node)

    def _check_coroutine(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in NonBlockingAsyncViewRule._walk_same_context(func):
            # ast.AsyncWith is a separate type: 'async with' (an
            # asyncio.Lock) is exactly the correct pattern and passes.
            if not isinstance(node, ast.With):
                continue
            lock_expr = self._lock_item(node)
            if lock_expr is None:
                continue
            for inner in NonBlockingAsyncViewRule._walk_same_context(node):
                if isinstance(inner, ast.Await):
                    yield self.finding(
                        ctx,
                        inner,
                        f"await inside 'with {lock_expr}:' holds a "
                        "synchronous lock across a suspension point in "
                        f"coroutine {func.name!r}",
                    )
                    break

    @staticmethod
    def _lock_item(node: ast.With) -> "str | None":
        for item in node.items:
            try:
                rendered = ast.unparse(item.context_expr)
            except Exception:  # pragma: no cover - unparse edge case
                continue
            if "lock" in rendered.lower():
                return rendered
        return None


# ---------------------------------------------------------------------------
# LEAK001 — resource not closed on every path
# ---------------------------------------------------------------------------


class ResourceLeakRule(Rule):
    """LEAK001: the must-close analysis
    (:mod:`repro.devtools.lifecycle`).  A connection, socket, executor,
    or temp file acquired in a function must be released on *every* CFG
    path out of it — including the exception edges — unless ownership
    escapes (returned, stored on ``self``, passed along).  Under
    sustained serving traffic an exception-path leak is a slow
    file-descriptor exhaustion that no test catches and every incident
    review finds."""

    rule_id = "LEAK001"
    severity = Severity.ERROR
    summary = "acquired resources must be closed on every path"
    hint = (
        "wrap the acquisition in 'with' (or contextlib.closing for "
        "sqlite3), or close it in a 'finally:' — exception paths leak "
        "it otherwise"
    )
    family_description = "resource lifecycle (must-close)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: list[tuple[ast.AST | None, list[ast.stmt]]] = [
            (None, ctx.tree.body)
        ]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node.body))
        for scope_root, body in scopes:
            analysis = LifecycleAnalysis(body, ctx.resolve)
            for leak in analysis.leaks():
                yield self._render(ctx, scope_root, leak)

    def _render(
        self, ctx: ModuleContext, scope_root: "ast.AST | None", leak: Leak
    ) -> Finding:
        site = leak.site
        if leak.closed_somewhere:
            detail = (
                "is closed on some paths but leaks on others (an "
                "exception or early return skips the close)"
            )
        else:
            detail = "is never closed on any path"
        finding = self.finding(
            ctx,
            site.node,
            f"{site.spec.label} acquired here {detail}",
        )
        fix = self._wrap_fix(ctx, scope_root, leak)
        if fix is not None:
            finding = replace(finding, fix=fix)
        return finding

    def _wrap_fix(
        self, ctx: ModuleContext, scope_root: "ast.AST | None", leak: Leak
    ) -> "Fix | None":
        """Rewrite ``name = ACQ(...)`` + rest-of-suite into a ``with``.

        Only offered for the simple single-name binding whose name is
        never used after the suite (the rewrite closes at suite exit).
        """
        site = leak.site
        stmt = site.stmt
        if (
            site.name is None
            or not isinstance(stmt, ast.Assign)
            or stmt.value is not site.node
        ):
            return None
        suite = self._enclosing_suite(ctx, stmt)
        if suite is None:
            return None
        index = next(
            (i for i, candidate in enumerate(suite) if candidate is stmt), None
        )
        if index is None or index + 1 >= len(suite):
            return None
        following = suite[index + 1 :]
        last = following[-1]
        end_line = getattr(last, "end_lineno", None)
        end_col = getattr(last, "end_col_offset", None)
        stmt_end = getattr(stmt, "end_lineno", None)
        if end_line is None or end_col is None or stmt_end is None:
            return None  # pragma: no cover - real statements carry spans
        if self._used_after(ctx, scope_root, site.name, end_line):
            return None
        acquire_src = ast.get_source_segment(ctx.source, site.node)
        if acquire_src is None:
            return None  # pragma: no cover - real calls carry spans
        header = self._header(ctx, site, acquire_src)
        if header is None:
            return None
        body_lines = []
        for raw in ctx.lines[stmt_end : end_line - 1]:
            body_lines.append(f"    {raw}" if raw.strip() else raw)
        last_line = ctx.lines[end_line - 1][:end_col]
        body_lines.append(f"    {last_line}" if last_line.strip() else last_line)
        return Fix(
            start_line=stmt.lineno,
            start_col=stmt.col_offset,
            end_line=end_line,
            end_col=end_col,
            replacement=header + "\n" + "\n".join(body_lines),
        )

    @staticmethod
    def _header(
        ctx: ModuleContext, site, acquire_src: str
    ) -> "str | None":
        if site.spec.with_closes:
            return f"with {acquire_src} as {site.name}:"
        # sqlite3: `with conn:` is a transaction, not a close — wrap in
        # contextlib.closing, but only when the module can name it.
        wrapper = None
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module == "contextlib":
                if any(alias.name == "closing" for alias in stmt.names):
                    wrapper = "closing"
                    break
            if isinstance(stmt, ast.Import) and any(
                alias.name == "contextlib" for alias in stmt.names
            ):
                wrapper = "contextlib.closing"
        if wrapper is None:
            return None
        return f"with {wrapper}({acquire_src}) as {site.name}:"

    @staticmethod
    def _enclosing_suite(
        ctx: ModuleContext, stmt: ast.stmt
    ) -> "list[ast.stmt] | None":
        parent = ctx.parent(stmt)
        if parent is None:
            return None
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(parent, attr, None)
            if isinstance(suite, list) and any(s is stmt for s in suite):
                return suite
        return None

    @staticmethod
    def _used_after(
        ctx: ModuleContext,
        scope_root: "ast.AST | None",
        name: str,
        end_line: int,
    ) -> bool:
        root = scope_root if scope_root is not None else ctx.tree
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and getattr(node, "lineno", 0) > end_line
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# RACE002 — shared attribute reached from loop and worker-thread paths
# ---------------------------------------------------------------------------

#: Method calls that mutate their receiver in place (RACE001's set).
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)


class LoopThreadSharedAttrRule(Rule):
    """RACE002: the serving stack runs coroutines on the loop thread
    and query builders on executor threads; an instance attribute
    holding a list/dict/set that one side mutates while the other reads
    is a data race no asyncio guarantee covers (only *loop-internal*
    state is single-threaded).  RACE001 finds this for module globals;
    this rule walks both call-path sides of the kind-aware call graph
    and flags unlocked mutations of shared ``self.*`` containers."""

    rule_id = "RACE002"
    severity = Severity.ERROR
    summary = "no unlocked shared-attribute mutation across loop/thread paths"
    hint = (
        "hold the object's lock around the mutation (with self._lock:), "
        "or confine the container to one side of the executor boundary"
    )
    excludes = ("repro.devtools",)
    requires_project: ClassVar[bool] = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Finding]:
        loop_paths = project.reachable_via(
            project.async_functions(), kinds=(EDGE_DIRECT,)
        )
        thread_paths = project.reachable_via(
            sorted(project.dispatch_targets()), kinds=(EDGE_DIRECT,)
        )
        if not loop_paths or not thread_paths:
            return
        for class_qualname in sorted(project.classes):
            cls_info = project.classes[class_qualname]
            if not self.applies_to(cls_info.module):
                continue
            mutable_attrs = self._mutable_attrs(cls_info)
            if not mutable_attrs:
                continue
            yield from self._check_class(
                project, cls_info, mutable_attrs, loop_paths, thread_paths
            )

    @staticmethod
    def _mutable_attrs(cls_info) -> "dict[str, str]":
        """attr name → kind for ``self.x = <mutable>`` in ``__init__``."""
        from .rules import _mutable_kind

        init = cls_info.methods.get("__init__")
        if init is None:
            return {}
        attrs: dict[str, str] = {}
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            kind = _mutable_kind(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs[target.attr] = kind
        return attrs

    def _check_class(
        self,
        project: ProjectModel,
        cls_info,
        mutable_attrs: "dict[str, str]",
        loop_paths: "dict[str, tuple[str, ...]]",
        thread_paths: "dict[str, tuple[str, ...]]",
    ) -> Iterator[Finding]:
        # attr → side → list of (method info, node, is_mutation, locked)
        accesses: dict[str, dict[str, list]] = {}
        for name in sorted(cls_info.methods):
            if name == "__init__":
                continue
            info = cls_info.methods[name]
            sides = []
            if info.qualname in loop_paths:
                sides.append("loop")
            if info.qualname in thread_paths:
                sides.append("thread")
            if not sides:
                continue
            ctx = project.context_for(info)
            for node, is_mutation in self._attr_accesses(
                info, mutable_attrs
            ):
                locked = self._under_lock(ctx, node)
                attr = self._attr_name(node)
                for side in sides:
                    accesses.setdefault(attr, {}).setdefault(side, []).append(
                        (info, node, is_mutation, locked)
                    )
        for attr in sorted(accesses):
            by_side = accesses[attr]
            if "loop" not in by_side or "thread" not in by_side:
                continue
            reported: set[tuple[str, int]] = set()
            for side, other in (("loop", "thread"), ("thread", "loop")):
                for info, node, is_mutation, locked in by_side[side]:
                    if not is_mutation or locked:
                        continue
                    ctx = project.context_for(info)
                    key = (ctx.path, node.lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    root_path = (
                        loop_paths if side == "loop" else thread_paths
                    )[info.qualname]
                    other_info = by_side[other][0][0]
                    other_root = (
                        loop_paths if other == "loop" else thread_paths
                    )[other_info.qualname]
                    yield replace(
                        self.finding(
                            ctx,
                            node,
                            f"{mutable_attrs[attr]} self.{attr} is mutated "
                            f"without a lock on the {side} path (via "
                            f"{_short(root_path[0])}) while the {other} path "
                            f"(via {_short(other_root[0])}) also reaches it",
                        ),
                        trace=self._trace(
                            project, root_path, other_root, other_info
                        ),
                    )

    @staticmethod
    def _trace(
        project: ProjectModel,
        path_a: "tuple[str, ...]",
        path_b: "tuple[str, ...]",
        other_info: FunctionInfo,
    ) -> "tuple[TraceStep, ...]":
        steps: list[TraceStep] = []
        for label, chain in (("this side", path_a), ("other side", path_b)):
            for qualname in chain:
                info = project.functions[qualname]
                steps.append(
                    TraceStep(
                        path=project.context_for(info).path,
                        line=info.node.lineno,
                        message=f"{label}: {_short(qualname)}",
                    )
                )
        return tuple(steps)

    @staticmethod
    def _attr_name(node: ast.AST) -> str:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Call):
            return node.func.value.attr  # type: ignore[union-attr]
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            target = node.targets[0] if isinstance(node, ast.Assign) else node.target
            if isinstance(target, ast.Subscript):
                return target.value.attr  # type: ignore[union-attr]
            return target.attr  # type: ignore[union-attr]
        raise AssertionError(f"unexpected access node {node!r}")

    @classmethod
    def _attr_accesses(
        cls, info: FunctionInfo, mutable_attrs: "dict[str, str]"
    ) -> "list[tuple[ast.AST, bool]]":
        """(node, is_mutation) for every ``self.<attr>`` touch."""

        def is_self_attr(node: ast.AST) -> bool:
            return (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in mutable_attrs
            )

        out: list[tuple[ast.AST, bool]] = []
        mutation_nodes: set[int] = set()
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and is_self_attr(node.func.value)
            ):
                out.append((node, True))
                mutation_nodes.add(id(node.func.value))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_self_attr(
                        target.value
                    ):
                        out.append((node, True))
                        mutation_nodes.add(id(target.value))
                        break
                    if is_self_attr(target):
                        out.append((node, True))
                        mutation_nodes.add(id(target))
                        break
        for node in ast.walk(info.node):
            if is_self_attr(node) and id(node) not in mutation_nodes:
                out.append((node, False))
        return out

    @staticmethod
    def _under_lock(ctx: ModuleContext, node: ast.AST) -> bool:
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    try:
                        rendered = ast.unparse(item.context_expr)
                    except Exception:  # pragma: no cover
                        continue
                    if "lock" in rendered.lower():
                        return True
            current = ctx.parent(current)
        return False
