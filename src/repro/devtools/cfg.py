"""Intra-procedural control-flow graphs over Python ASTs.

The flow rules (FLOW001/FLOW002/RACE001 and the data-flow DET002) need
to reason about *paths*, not just syntax: "does a definition written in
one branch reach this loop?", "does every path through this ``except``
handler log or re-raise?".  This module builds the classic basic-block
CFG those questions are answered on.

The graph is deliberately statement-granular and conservative:

* every simple statement is appended to the current block; compound
  statements (``if``/``for``/``while``/``try``/``with``/``match``)
  split blocks and wire branch/loop/back edges;
* ``return``/``raise`` edges go to the synthetic **exit** block,
  ``break``/``continue`` to the innermost loop's after/header blocks;
* a ``try`` body may raise anywhere, so every block the body creates is
  wired to every handler (and to the ``finally`` suite) — the standard
  over-approximation that keeps the analysis sound for reaching
  definitions and the must-close lattice alike;
* nested function/class definitions are treated as opaque single
  statements (their bodies are separate CFGs built on demand).

Nothing here executes the analyzed code; the input is a parsed
:mod:`ast` function (or a module body wrapped via
:meth:`CFG.from_statements`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "CFG"]


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    block_id: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(stmt).__name__ for stmt in self.statements)
        return f"<block {self.block_id} [{kinds}] -> {self.successors}>"


class CFG:
    """Control-flow graph of one function body (or module body).

    Blocks are numbered in construction order; block 0 is the entry and
    :attr:`exit_id` is the synthetic exit every ``return``/``raise``
    and fall-through path reaches.
    """

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.entry_id = self._new_block().block_id
        self.exit_id = self._new_block().block_id
        #: (break targets, continue targets) stack during construction.
        self._loops: list[tuple[int, int]] = []
        #: entry blocks of pending ``finally`` suites; ``return``/``raise``
        #: inside a try-with-finally route through the innermost one.
        self._finals: list[int] = []

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_function(cls, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> "CFG":
        return cls.from_statements(node.body)

    @classmethod
    def from_statements(cls, body: list[ast.stmt]) -> "CFG":
        cfg = cls()
        last = cfg._build(body, cfg.entry_id)
        if last is not None:
            cfg._edge(last, cfg.exit_id)
        return cfg

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(block_id=len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)

    def _build(self, body: list[ast.stmt], current: "int | None") -> "int | None":
        """Append ``body`` after block ``current``; return the open block
        control falls out of, or None when every path terminated."""
        for stmt in body:
            if current is None:
                # Unreachable code after return/raise/break; keep it in a
                # dangling block so its definitions still parse, but give
                # it no predecessors.
                current = self._new_block().block_id
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.stmt, current: int) -> "int | None":
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].statements.append(stmt)
            return self._build(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(stmt)
            # A pending finally runs before the function actually exits.
            target = self._finals[-1] if self._finals else self.exit_id
            self._edge(current, target)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].statements.append(stmt)
            if self._loops:
                self._edge(current, self._loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].statements.append(stmt)
            if self._loops:
                self._edge(current, self._loops[-1][1])
            return None
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._build_match(stmt, current)
        # Simple statement (incl. nested def/class treated opaquely).
        self.blocks[current].statements.append(stmt)
        return current

    def _build_if(self, stmt: ast.If, current: int) -> "int | None":
        # The test expression evaluates in the current block.
        self.blocks[current].statements.append(
            ast.Expr(value=stmt.test, lineno=stmt.lineno, col_offset=stmt.col_offset)
        )
        after: "int | None" = None
        then_entry = self._new_block().block_id
        self._edge(current, then_entry)
        then_exit = self._build(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._new_block().block_id
            self._edge(current, else_entry)
            else_exit = self._build(stmt.orelse, else_entry)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        after = self._new_block().block_id
        if then_exit is not None:
            self._edge(then_exit, after)
        if else_exit is not None:
            self._edge(else_exit, after)
        return after

    def _build_loop(
        self, stmt: "ast.For | ast.AsyncFor | ast.While", current: int
    ) -> int:
        header = self._new_block().block_id
        self._edge(current, header)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # The iteration target is (re)defined at the header on every trip.
            self.blocks[header].statements.append(stmt)
        else:
            self.blocks[header].statements.append(
                ast.Expr(
                    value=stmt.test, lineno=stmt.lineno, col_offset=stmt.col_offset
                )
            )
        after = self._new_block().block_id
        self._edge(header, after)  # zero-trip path
        self._loops.append((after, header))
        body_entry = self._new_block().block_id
        self._edge(header, body_entry)
        body_exit = self._build(stmt.body, body_entry)
        if body_exit is not None:
            self._edge(body_exit, header)  # back edge
        self._loops.pop()
        if stmt.orelse:
            return self._build(stmt.orelse, after) or after
        return after

    def _build_try(self, stmt: ast.Try, current: int) -> "int | None":
        final_entry: "int | None" = None
        if stmt.finalbody:
            # Created up front so return/raise inside the region can be
            # routed through it while the body and handlers are built.
            final_entry = self._new_block().block_id
            self._finals.append(final_entry)
        body_entry = self._new_block().block_id
        self._edge(current, body_entry)
        # Any statement in the body may raise: conservatively wire *every*
        # block the body creates (entry, mid-body branches, and the body
        # exit) to every handler, so state acquired part-way through the
        # body reaches the exception paths.
        handler_entries: list[int] = []
        for handler in stmt.handlers:
            handler_entries.append(self._new_block().block_id)
        first_body_block = len(self.blocks)
        body_exit = self._build(stmt.body, body_entry)
        raising = [body_entry, *range(first_body_block, len(self.blocks))]
        for entry in handler_entries:
            for src in raising:
                self._edge(src, entry)
            if body_exit is not None:
                self._edge(body_exit, entry)
        exits: list[int] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_exit = self._build(handler.body, entry)
            if handler_exit is not None:
                exits.append(handler_exit)
        if stmt.orelse and body_exit is not None:
            body_exit = self._build(stmt.orelse, body_exit)
        if body_exit is not None:
            exits.append(body_exit)
        if stmt.finalbody:
            self._finals.pop()
            for exit_block in exits:
                self._edge(exit_block, final_entry)
            # The exceptional path (unmatched exception type, or a raise
            # mid-body with no handlers) still runs the finally suite.
            for src in raising:
                self._edge(src, final_entry)
            final_exit = self._build(stmt.finalbody, final_entry)
            if final_exit is not None:
                # Abnormal entries (return, propagating raise) continue
                # from the finally straight to the function exit.
                self._edge(final_exit, self.exit_id)
            return final_exit
        if not exits:
            return None
        after = self._new_block().block_id
        for exit_block in exits:
            self._edge(exit_block, after)
        return after

    def _build_match(self, stmt: "ast.Match", current: int) -> "int | None":
        self.blocks[current].statements.append(
            ast.Expr(
                value=stmt.subject, lineno=stmt.lineno, col_offset=stmt.col_offset
            )
        )
        exits: list[int] = []
        for case in stmt.cases:
            entry = self._new_block().block_id
            self._edge(current, entry)
            case_exit = self._build(case.body, entry)
            if case_exit is not None:
                exits.append(case_exit)
        exits.append(current)  # no case may match
        after = self._new_block().block_id
        for exit_block in exits:
            self._edge(exit_block, after)
        return after

    # -- traversal helpers ------------------------------------------------------

    def reverse_postorder(self) -> list[int]:
        """Block ids in reverse postorder from the entry (good worklist
        order for forward data-flow problems)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(block_id: int) -> None:
            stack = [(block_id, iter(self.blocks[block_id].successors))]
            seen.add(block_id)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(self.blocks[nxt].successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry_id)
        for block_id in self.blocks:
            if block_id not in seen:
                visit(block_id)
        return list(reversed(order))
