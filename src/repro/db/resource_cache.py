"""SQLite-backed persistent cache for external-resource expansions.

The paper recommends performing term and context extraction offline
(Section V-D); this store is what makes that practical at scale.  Every
distinct ``(namespace, term)`` expansion is written once and reused by
every worker of the current run *and* by every later run pointed at the
same file — the Datasette-style "SQLite as a shared cache" pattern.

Design points:

* **Thread-safe.** One connection (``check_same_thread=False``) guarded
  by a lock; SQLite's own file locking arbitrates between processes.
* **Degrades, never aborts.** A corrupted, locked, or unwritable cache
  file switches the store into a disabled mode where ``get`` misses and
  ``put`` is a no-op — the pipeline silently falls back to the
  in-process tier instead of crashing a batch job.
* **Namespaced.** Resources with different semantics (or differently
  configured worlds) write under distinct namespaces so one run can
  never poison another.
* **Batched.** :meth:`get_many` answers a whole term batch with chunked
  ``IN (...)`` selects and :meth:`put_many` upserts a batch inside one
  transaction via ``executemany`` — one round trip per chunk instead of
  one per term, which is what makes the batched query engine's cache
  traffic cheap.
* **Tuned.** File-backed stores run under ``journal_mode=WAL`` with
  ``synchronous=NORMAL`` (readers never block the writer, fsyncs
  amortized); backends that reject the pragmas (``:memory:``, read-only
  or network filesystems) keep their defaults — pragma failure is never
  an error.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections.abc import Iterable, Mapping, Sequence

from ..observability.context import current_metrics
from ..observability.logging import get_logger

log = get_logger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS context_cache (
    namespace TEXT NOT NULL,
    term      TEXT NOT NULL,
    terms     TEXT NOT NULL,
    PRIMARY KEY (namespace, term)
);
"""

#: Pragmas applied to every connection, best effort (see module docstring).
_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
)

#: Terms per ``IN (...)`` select — comfortably under SQLite's historical
#: 999-host-parameter limit (one slot is taken by the namespace).
_SELECT_CHUNK = 500


class PersistentResourceCache:
    """Persistent ``(namespace, term) -> context terms`` store.

    Parameters
    ----------
    path:
        SQLite database path; ``":memory:"`` keeps the store private to
        this object (still shareable across resource instances).
    timeout:
        Seconds to wait on a locked database before degrading.
    """

    def __init__(self, path: str = ":memory:", timeout: float = 5.0) -> None:
        self.path = path
        self._timeout = timeout
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        self.disabled = False
        self.error: Exception | None = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.batch_reads = 0
        self.batch_writes = 0
        self.wal_enabled = False
        self._connect()

    # -- connection management -------------------------------------------------

    def _connect(self) -> None:
        try:
            connection = sqlite3.connect(
                self.path, timeout=self._timeout, check_same_thread=False
            )
            connection.executescript(_SCHEMA)
            connection.commit()
        except sqlite3.Error as exc:
            self._degrade(exc)
        else:
            self._connection = connection
            self._apply_pragmas(connection)

    def _apply_pragmas(self, connection: sqlite3.Connection) -> None:
        """Best-effort performance pragmas.

        ``:memory:`` databases report ``journal_mode=memory`` and some
        filesystems reject WAL outright; neither disables the store —
        the cache simply runs on SQLite's defaults.
        """
        for pragma in _PRAGMAS:
            try:
                row = connection.execute(pragma).fetchone()
            except sqlite3.Error as exc:
                log.debug(
                    "persistent_cache.pragma_rejected",
                    path=self.path,
                    pragma=pragma,
                    error=str(exc),
                )
            else:
                if pragma.endswith("journal_mode=WAL"):
                    self.wal_enabled = bool(row) and str(row[0]).lower() == "wal"

    def _degrade(self, exc: Exception) -> None:
        """Disable the persistent tier after an unrecoverable error."""
        self.disabled = True
        self.error = exc
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error as close_exc:
                log.debug(
                    "persistent_cache.close_failed",
                    path=self.path,
                    error=str(close_exc),
                )
            self._connection = None
        metrics = current_metrics()
        if metrics is not None:
            metrics.increment("cache.persistent.degraded")
        log.warning(
            "persistent_cache.degraded", path=self.path, error=str(exc)
        )

    # -- cache operations --------------------------------------------------------

    def get(self, namespace: str, term: str) -> tuple[str, ...] | None:
        """Cached expansion for ``term``, or None on a miss (or when disabled)."""
        with self._lock:
            if self.disabled or self._connection is None:
                return None
            try:
                row = self._connection.execute(
                    "SELECT terms FROM context_cache WHERE namespace = ? AND term = ?",
                    (namespace, term),
                ).fetchone()
            except sqlite3.Error as exc:
                self._degrade(exc)
                return None
            metrics = current_metrics()
            if row is None:
                self.misses += 1
                if metrics is not None:
                    metrics.increment("cache.persistent.misses")
                return None
            self.hits += 1
            if metrics is not None:
                metrics.increment("cache.persistent.hits")
            return tuple(json.loads(row[0]))

    def get_many(
        self, namespace: str, terms: Sequence[str]
    ) -> dict[str, tuple[str, ...]]:
        """Cached expansions for a term batch (present keys only).

        One chunked ``SELECT ... IN (...)`` per :data:`_SELECT_CHUNK`
        terms replaces a round trip per term; absent terms are simply
        missing from the returned mapping.  When disabled, returns an
        empty mapping (every term is a miss).
        """
        if not terms:
            return {}
        found: dict[str, tuple[str, ...]] = {}
        with self._lock:
            if self.disabled or self._connection is None:
                return {}
            try:
                for start in range(0, len(terms), _SELECT_CHUNK):
                    chunk = list(terms[start : start + _SELECT_CHUNK])
                    placeholders = ",".join("?" * len(chunk))
                    rows = self._connection.execute(
                        "SELECT term, terms FROM context_cache "
                        f"WHERE namespace = ? AND term IN ({placeholders})",
                        [namespace, *chunk],
                    ).fetchall()
                    for term, payload in rows:
                        found[term] = tuple(json.loads(payload))
            except sqlite3.Error as exc:
                self._degrade(exc)
                return {}
            self.batch_reads += 1
            self.hits += len(found)
            self.misses += len(terms) - len(found)
        metrics = current_metrics()
        if metrics is not None:
            metrics.increment("cache.persistent.batch_reads")
            metrics.increment("cache.persistent.hits", len(found))
            metrics.increment(
                "cache.persistent.misses", len(terms) - len(found)
            )
        return found

    def put(self, namespace: str, term: str, terms: tuple[str, ...]) -> None:
        """Store an expansion (no-op when disabled; last writer wins)."""
        self.put_many(namespace, {term: terms})

    def put_many(
        self, namespace: str, entries: Mapping[str, Iterable[str]]
    ) -> None:
        """Upsert a batch of expansions inside a single transaction.

        One ``executemany`` with ``ON CONFLICT ... DO UPDATE`` per call:
        either every entry of the batch commits or none does, and a
        concurrent writer racing on the same terms leaves the table in a
        last-writer-wins state rather than a partially-interleaved one.
        """
        if not entries:
            return
        rows = [
            (namespace, term, json.dumps(list(terms)))
            for term, terms in entries.items()
        ]
        with self._lock:
            if self.disabled or self._connection is None:
                return
            try:
                with self._connection:
                    self._connection.executemany(
                        "INSERT INTO context_cache (namespace, term, terms) "
                        "VALUES (?, ?, ?) "
                        "ON CONFLICT(namespace, term) "
                        "DO UPDATE SET terms = excluded.terms",
                        rows,
                    )
            except sqlite3.Error as exc:
                self._degrade(exc)
                return
            self.writes += len(rows)
            self.batch_writes += 1
        metrics = current_metrics()
        if metrics is not None:
            metrics.increment("cache.persistent.writes", len(rows))
            metrics.increment("cache.persistent.batch_writes")

    def clear(self, namespace: str | None = None) -> None:
        """Drop one namespace's entries, or every entry when None."""
        with self._lock:
            if self.disabled or self._connection is None:
                return
            try:
                with self._connection:
                    if namespace is None:
                        self._connection.execute("DELETE FROM context_cache")
                    else:
                        self._connection.execute(
                            "DELETE FROM context_cache WHERE namespace = ?",
                            (namespace,),
                        )
            except sqlite3.Error as exc:
                self._degrade(exc)

    def size(self, namespace: str | None = None) -> int:
        """Stored entries in one namespace (or overall when None)."""
        with self._lock:
            if self.disabled or self._connection is None:
                return 0
            try:
                if namespace is None:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM context_cache"
                    ).fetchone()
                else:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM context_cache WHERE namespace = ?",
                        (namespace,),
                    ).fetchone()
            except sqlite3.Error as exc:
                self._degrade(exc)
                return 0
            return row[0]

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    # -- pickling (process-backed worker pools) ----------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_connection"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._connection = None
        if not self.disabled:
            # A ":memory:" store cannot cross a process boundary; the
            # worker reconnects to a private empty copy instead.
            self._connect()
