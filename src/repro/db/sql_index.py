"""A SQLite-backed inverted index.

The in-memory :class:`~repro.db.inverted_index.InvertedIndex` is the
fast path; this class stores postings relationally (the paper's setup
stores its Wikipedia snapshot in a relational database, and a production
deployment of the facet system would do the same for the text archive).
Supports the same document-frequency queries plus SQL-side conjunctive
document lookup, and can be built once and reopened across processes.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable

from ..corpus.document import Document
from ..errors import StorageError
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.tokenizer import word_tokens

_SCHEMA = """
CREATE TABLE IF NOT EXISTS postings (
    term   TEXT NOT NULL,
    doc_id TEXT NOT NULL,
    tf     INTEGER NOT NULL,
    PRIMARY KEY (term, doc_id)
);
CREATE INDEX IF NOT EXISTS idx_postings_doc ON postings(doc_id);
CREATE TABLE IF NOT EXISTS doc_lengths (
    doc_id TEXT PRIMARY KEY,
    length INTEGER NOT NULL
);
"""


class SqlInvertedIndex:
    """Inverted index persisted in SQLite (":memory:" by default)."""

    def __init__(self, path: str = ":memory:", max_phrase_words: int = 3) -> None:
        self._connection = sqlite3.connect(path)
        self._max_phrase_words = max_phrase_words
        try:
            with self._connection:
                self._connection.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"cannot open index at {path!r}") from exc

    # -- construction ----------------------------------------------------------

    def add_document(self, document: Document) -> None:
        """Index one document (words + phrases)."""
        words = [w for w in word_tokens(document.text) if not is_stopword(w)]
        phrases = candidate_phrases(
            document.text,
            max_words=self._max_phrase_words,
            include_unigrams=False,
        )
        counts: dict[str, int] = {}
        for term in words + phrases:
            counts[term] = counts.get(term, 0) + 1
        try:
            with self._connection:
                self._connection.execute(
                    "INSERT INTO doc_lengths VALUES (?, ?)",
                    (document.doc_id, len(words)),
                )
                self._connection.executemany(
                    "INSERT INTO postings VALUES (?, ?, ?)",
                    [
                        (term, document.doc_id, tf)
                        for term, tf in counts.items()
                    ],
                )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"document already indexed: {document.doc_id!r}"
            ) from exc

    def add_documents(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add_document(document)

    # -- queries --------------------------------------------------------------------

    @property
    def document_count(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM doc_lengths"
        ).fetchone()
        return row[0]

    def document_frequency(self, term: str) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM postings WHERE term = ?", (term,)
        ).fetchone()
        return row[0]

    def term_frequency(self, term: str, doc_id: str) -> int:
        row = self._connection.execute(
            "SELECT tf FROM postings WHERE term = ? AND doc_id = ?",
            (term, doc_id),
        ).fetchone()
        return row[0] if row else 0

    def documents_with(self, term: str) -> set[str]:
        rows = self._connection.execute(
            "SELECT doc_id FROM postings WHERE term = ?", (term,)
        ).fetchall()
        return {row[0] for row in rows}

    def documents_with_all(self, terms: list[str]) -> set[str]:
        """Conjunctive lookup, computed on the SQL side."""
        if not terms:
            return set()
        placeholders = ",".join("?" for _ in terms)
        rows = self._connection.execute(
            f"""
            SELECT doc_id FROM postings
            WHERE term IN ({placeholders})
            GROUP BY doc_id
            HAVING COUNT(DISTINCT term) = ?
            """,
            (*terms, len(terms)),
        ).fetchall()
        return {row[0] for row in rows}

    def top_terms(self, n: int = 10) -> list[tuple[str, int]]:
        """Terms with highest document frequency."""
        rows = self._connection.execute(
            """
            SELECT term, COUNT(*) AS df FROM postings
            GROUP BY term ORDER BY df DESC, term ASC LIMIT ?
            """,
            (n,),
        ).fetchall()
        return [(row[0], row[1]) for row in rows]

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SqlInvertedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
