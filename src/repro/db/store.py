"""Document storage.

:class:`DocumentStore` keeps documents in memory and can persist to or
load from SQLite (stdlib ``sqlite3``), so corpora survive between runs of
the benchmark harness without regeneration.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Iterator
from datetime import date

from ..corpus.document import Corpus, Document, GoldAnnotation
from ..errors import StorageError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc_id     TEXT PRIMARY KEY,
    title      TEXT NOT NULL,
    body       TEXT NOT NULL,
    source     TEXT NOT NULL,
    published  TEXT NOT NULL,
    gold_topic TEXT,
    gold_entities TEXT,
    gold_facets   TEXT,
    gold_leaked   TEXT
);
"""

_FIELD_SEP = "\x1f"  # unit separator: safe because terms never contain it


def _pack(values: tuple[str, ...]) -> str:
    return _FIELD_SEP.join(values)


def _unpack(packed: str | None) -> tuple[str, ...]:
    if not packed:
        return ()
    return tuple(packed.split(_FIELD_SEP))


#: Column order shared by every SQLite document table (store + artifact).
DOCUMENT_COLUMNS = (
    "doc_id",
    "title",
    "body",
    "source",
    "published",
    "gold_topic",
    "gold_entities",
    "gold_facets",
    "gold_leaked",
)


def document_to_row(doc: Document) -> tuple:
    """Flatten a document (gold annotation included) into a SQLite row."""
    return (
        doc.doc_id,
        doc.title,
        doc.body,
        doc.source,
        doc.published.isoformat(),
        doc.gold.topic if doc.gold else None,
        _pack(doc.gold.entity_names) if doc.gold else None,
        _pack(doc.gold.facet_terms) if doc.gold else None,
        _pack(doc.gold.leaked_terms) if doc.gold else None,
    )


def document_from_row(row: tuple) -> Document:
    """Rebuild a document from a :data:`DOCUMENT_COLUMNS` row."""
    gold = None
    if row[5] is not None:
        gold = GoldAnnotation(
            topic=row[5],
            entity_names=_unpack(row[6]),
            facet_terms=_unpack(row[7]),
            leaked_terms=_unpack(row[8]),
        )
    return Document(
        doc_id=row[0],
        title=row[1],
        body=row[2],
        source=row[3],
        published=date.fromisoformat(row[4]),
        gold=gold,
    )


class DocumentStore:
    """An ordered collection of documents with id lookup."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = []
        self._by_id: dict[str, Document] = {}
        for document in documents:
            self.add(document)

    @classmethod
    def from_corpus(cls, corpus: Corpus) -> "DocumentStore":
        """Build a store holding every document of ``corpus``."""
        return cls(corpus.documents)

    def add(self, document: Document) -> None:
        """Add one document; ids must be unique."""
        if document.doc_id in self._by_id:
            raise StorageError(f"duplicate doc_id: {document.doc_id!r}")
        self._by_id[document.doc_id] = document
        self._documents.append(document)

    def get(self, doc_id: str) -> Document:
        """Fetch a document by id."""
        try:
            return self._by_id[doc_id]
        except KeyError:
            raise StorageError(f"unknown doc_id: {doc_id!r}") from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    # -- SQLite persistence -----------------------------------------------------

    def save(self, path: str) -> None:
        """Persist all documents to a SQLite database file."""
        connection = sqlite3.connect(path)
        try:
            with connection:
                connection.executescript(_SCHEMA)
                connection.execute("DELETE FROM documents")
                connection.executemany(
                    "INSERT INTO documents VALUES (?,?,?,?,?,?,?,?,?)",
                    [document_to_row(doc) for doc in self._documents],
                )
        finally:
            connection.close()

    @classmethod
    def load(cls, path: str) -> "DocumentStore":
        """Load a store previously written with :meth:`save`."""
        connection = sqlite3.connect(path)
        try:
            rows = connection.execute(
                "SELECT doc_id, title, body, source, published, gold_topic,"
                " gold_entities, gold_facets, gold_leaked"
                " FROM documents ORDER BY rowid"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"cannot read document store at {path!r}") from exc
        finally:
            connection.close()
        store = cls()
        for row in rows:
            store.add(document_from_row(row))
        return store
