"""Text-database substrate: document store, inverted index, search.

The paper treats the news archive as a searchable text database with an
OLAP-style faceted layer on top.  This subpackage provides that
substrate: a document store (in-memory, with an optional SQLite backing
for persistence), an inverted index maintaining the document frequencies
the facet analysis needs, and BM25 ranked keyword search used by the
browsing interface and the user-study simulator.
"""

from .store import DocumentStore
from .inverted_index import InvertedIndex, Posting
from .resource_cache import PersistentResourceCache
from .search import BM25Searcher, SearchResult
from .sql_index import SqlInvertedIndex

__all__ = [
    "DocumentStore",
    "InvertedIndex",
    "Posting",
    "BM25Searcher",
    "SearchResult",
    "SqlInvertedIndex",
    "PersistentResourceCache",
]
