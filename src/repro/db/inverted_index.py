"""Inverted index over a document collection.

Maintains postings (term -> documents with term frequency) for both
single words and candidate phrases, exposing the document-frequency and
rank statistics consumed by the comparative frequency analysis
(Section IV-C of the paper) and the BM25 searcher.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from ..corpus.document import Document
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.tokenizer import word_tokens
from ..text.vocabulary import Vocabulary


@dataclass(frozen=True)
class Posting:
    """One document entry in a postings list."""

    doc_id: str
    term_frequency: int


class InvertedIndex:
    """Word- and phrase-level inverted index.

    Words are indexed for search (stopwords excluded); phrases up to
    ``max_phrase_words`` are indexed for the facet-term analysis.
    """

    def __init__(self, max_phrase_words: int = 3) -> None:
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}
        self._vocabulary = Vocabulary()
        self._max_phrase_words = max_phrase_words

    # -- construction -----------------------------------------------------------

    def add_document(self, document: Document) -> None:
        """Index one document (words + phrases)."""
        words = [w for w in word_tokens(document.text) if not is_stopword(w)]
        phrases = candidate_phrases(
            document.text, max_words=self._max_phrase_words, include_unigrams=False
        )
        terms = words + phrases
        self._doc_lengths[document.doc_id] = len(words)
        counts: dict[str, int] = defaultdict(int)
        for term in terms:
            counts[term] += 1
        for term, count in counts.items():
            self._postings[term][document.doc_id] = count
        self._vocabulary.add_document(terms)

    def add_documents(self, documents: Iterable[Document]) -> None:
        """Index many documents."""
        for document in documents:
            self.add_document(document)

    # -- accessors -----------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """Corpus term statistics (tf/df/rank)."""
        return self._vocabulary

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def document_length(self, doc_id: str) -> int:
        """Word count of one document (stopwords excluded)."""
        return self._doc_lengths.get(doc_id, 0)

    def postings(self, term: str) -> list[Posting]:
        """Postings list for ``term`` (empty when unknown)."""
        entries = self._postings.get(term, {})
        return [Posting(doc_id, tf) for doc_id, tf in entries.items()]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def documents_with(self, term: str) -> set[str]:
        """Ids of documents containing ``term``."""
        return set(self._postings.get(term, ()))

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    # -- bulk export (artifact compilation) ----------------------------------------

    def iter_postings(self) -> Iterable[tuple[str, str, int]]:
        """Every ``(term, doc_id, tf)`` posting, in insertion order.

        The bulk-export path :meth:`repro.serving.FacetIndex.build` uses
        to compile the serving artifact without re-tokenizing documents.
        """
        for term, entries in self._postings.items():
            for doc_id, tf in entries.items():
                yield term, doc_id, tf

    def document_lengths(self) -> dict[str, int]:
        """Word count per document id (stopwords excluded); a copy."""
        return dict(self._doc_lengths)

    @property
    def total_document_length(self) -> int:
        """Sum of all document lengths (for exact avgdl reconstruction)."""
        return sum(self._doc_lengths.values())
