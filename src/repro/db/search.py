"""BM25 ranked keyword search over the inverted index.

Used by the faceted browsing interface (search + facet drill-down, as in
the paper's user study) and by the user-study simulator's keyword-query
actions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..text.stopwords import is_stopword
from ..text.tokenizer import word_tokens
from .inverted_index import InvertedIndex


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit."""

    doc_id: str
    score: float


class BM25Searcher:
    """Okapi BM25 scoring over an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {k1}")
        if not 0 <= b <= 1:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self._index = index
        self._k1 = k1
        self._b = b

    def _idf(self, term: str) -> float:
        n = self._index.document_count
        df = self._index.document_frequency(term)
        return math.log(1 + (n - df + 0.5) / (df + 0.5))

    def search(self, query: str, limit: int = 10) -> list[SearchResult]:
        """Rank documents for ``query``; empty list when nothing matches."""
        terms = [w for w in word_tokens(query) if not is_stopword(w)]
        if not terms:
            return []
        avgdl = self._index.average_document_length or 1.0
        scores: dict[str, float] = {}
        for term in terms:
            idf = self._idf(term)
            for posting in self._index.postings(term):
                dl = self._index.document_length(posting.doc_id)
                tf = posting.term_frequency
                denominator = tf + self._k1 * (1 - self._b + self._b * dl / avgdl)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + idf * (
                    tf * (self._k1 + 1) / denominator
                )
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [SearchResult(doc_id, score) for doc_id, score in ranked[:limit]]
