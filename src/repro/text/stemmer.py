"""A complete implementation of the Porter stemming algorithm.

Porter, M.F., "An algorithm for suffix stripping", Program 14(3), 1980.
The implementation follows the original five-step definition, including
the measure ``m`` (VC-pattern count) and the *v*, *d*, *o* conditions.
Used by the vocabulary statistics and the subsumption baseline to conflate
inflectional variants ("markets" / "market").
"""

from __future__ import annotations

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer; use :func:`stem` for the module-level API."""

    # -- character classification ------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        char = word[i]
        if char in _VOWELS:
            return False
        if char == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _m(self, stem_part: str) -> int:
        """Count of VC sequences in ``stem_part``."""
        count = 0
        prev_vowel = False
        for i in range(len(stem_part)):
            vowel = not self._is_consonant(stem_part, i)
            if prev_vowel and not vowel:
                count += 1
            prev_vowel = vowel
        return count

    def _contains_vowel(self, stem_part: str) -> bool:
        return any(not self._is_consonant(stem_part, i) for i in range(len(stem_part)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        if not self._is_consonant(word, len(word) - 3):
            return False
        if self._is_consonant(word, len(word) - 2):
            return False
        if not self._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # -- suffix replacement helper -----------------------------------------

    def _replace(self, word: str, suffix: str, replacement: str, m_min: int) -> str | None:
        """If ``word`` ends with ``suffix`` and the stem measure exceeds
        ``m_min``, return the word with the suffix replaced; else None."""
        if not word.endswith(suffix):
            return None
        stem_part = word[: len(word) - len(suffix)]
        if self._m(stem_part) > m_min:
            return stem_part + replacement
        return word  # suffix matched but condition failed: stop searching

    # -- the five steps ------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem_part = word[:-3]
            if self._m(stem_part) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if self._m(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_RULES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _apply_rules(self, word: str, rules: tuple[tuple[str, str], ...]) -> str:
        for suffix, replacement in rules:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._m(stem_part) > 0:
                    return stem_part + replacement
                return word
        return word

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self._m(stem_part) > 1:
                    return stem_part
                return word
        if word.endswith("ion"):
            stem_part = word[:-3]
            if self._m(stem_part) > 1 and stem_part.endswith(("s", "t")):
                return stem_part
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = self._m(stem_part)
            if m > 1 or (m == 1 and not self._ends_cvc(stem_part)):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if self._m(word) > 1 and self._ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word

    # -- public API -----------------------------------------------------------

    def stem(self, word: str) -> str:
        """Stem a single lower-case word."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._apply_rules(word, self._STEP2_RULES)
        word = self._apply_rules(word, self._STEP3_RULES)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with the default :class:`PorterStemmer` instance."""
    return _DEFAULT.stem(word)
