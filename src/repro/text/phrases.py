"""N-gram and candidate-phrase extraction.

Facet terms in the paper are "single words and multi-word phrases"
(Section IV-A, footnote 2).  This module produces the candidate phrases
that the term extractors and frequency analysis operate on: contiguous
word n-grams that neither start nor end with a stopword.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .interning import sentences, tokenize
from .stopwords import is_stopword
from .tokenizer import Token


def ngrams(words: list[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield contiguous ``n``-grams of ``words``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(words) - n + 1):
        yield tuple(words[i : i + n])


def _valid_phrase(words: tuple[str, ...]) -> bool:
    """A candidate phrase may not start/end with a stopword or number."""
    first, last = words[0], words[-1]
    if is_stopword(first) or is_stopword(last):
        return False
    if first[0].isdigit() and len(words) == 1:
        return False
    return True


def phrases_from_words(
    words: list[str],
    max_words: int = 3,
    include_unigrams: bool = True,
) -> list[str]:
    """Candidate phrases of one sentence, given its lower-cased words.

    The n-gram half of :func:`candidate_phrases` — callers that already
    hold a sentence's token stream (the annotation statistics pass) use
    this directly instead of re-tokenizing the text.
    """
    if max_words <= 0:
        raise ValueError(f"max_words must be positive, got {max_words}")
    phrases: list[str] = []
    min_n = 1 if include_unigrams else 2
    for n in range(min_n, max_words + 1):
        for gram in ngrams(words, n):
            if _valid_phrase(gram):
                phrases.append(" ".join(gram))
    return phrases


def candidate_phrases(
    text: str,
    max_words: int = 3,
    include_unigrams: bool = True,
) -> list[str]:
    """Extract candidate phrases from ``text``.

    Phrases never cross sentence boundaries; each is lower-cased and
    space-joined.  Duplicates are preserved (callers count frequencies).
    """
    if max_words <= 0:
        raise ValueError(f"max_words must be positive, got {max_words}")
    phrases: list[str] = []
    for sentence in sentences(text):
        words = [token.lower for token in tokenize(sentence)]
        phrases.extend(
            phrases_from_words(
                words, max_words=max_words, include_unigrams=include_unigrams
            )
        )
    return phrases


def capitalized_spans(text: str) -> list[list[Token]]:
    """Group consecutive capitalized tokens within each sentence.

    Used by the rule-based named-entity tagger: runs of capitalized words
    (optionally joined by particles like "of" and "de") are named-entity
    candidates.
    """
    particles = {"of", "de", "la", "van", "von", "al", "bin", "the"}
    spans: list[list[Token]] = []
    for sentence in sentences(text):
        tokens = tokenize(sentence)
        current: list[Token] = []
        for index, token in enumerate(tokens):
            # Punctuation between tokens (anything wider than one space)
            # breaks the span: "PARIS — Supporters" is two spans.
            adjacent = not current or token.start - current[-1].end <= 1
            if token.is_capitalized and not token.is_numeric and adjacent:
                current.append(token)
            elif (
                current
                and adjacent
                and token.lower in particles
                and index + 1 < len(tokens)
                and tokens[index + 1].is_capitalized
                and tokens[index + 1].start - token.end <= 1
            ):
                current.append(token)
            else:
                if current:
                    spans.append(current)
                current = []
                if token.is_capitalized and not token.is_numeric:
                    current.append(token)
        if current:
            spans.append(current)
    return spans


def join_span(span: Iterable[Token]) -> str:
    """Join a token span back into a surface phrase."""
    return " ".join(token.text for token in span)
