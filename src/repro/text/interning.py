"""The columnar data plane's text-function memo context.

Steps 1–2 call the pure text functions — :func:`tokenize`,
:func:`sentences`, :func:`normalize_term` — many times on the same
inputs: the stats pass and every extractor re-tokenize each document,
and every merge re-normalizes the same surface forms.  When the
columnar plane is active (``ParallelConfig.columnar``), the per-chunk
workers activate a :class:`TextMemo` that memoizes those functions per
distinct input string.  Memoizing a pure function cannot change any
output byte — only how often the regex engine runs — which is what
keeps the columnar/legacy differential trivially closed at this layer.

Call sites import the module-level wrappers below instead of the raw
:mod:`repro.text.tokenizer` functions; with no active memo they
delegate straight through, so the legacy path is untouched.

The memo is deliberately context-local (a :class:`contextvars.ContextVar`
set inside the chunk worker): thread-pool chunks never share a dict and
process-pool workers build their own, so no locking is needed anywhere.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from .stopwords import STOPWORDS
from .tokenizer import _WORD_RE, Token
from .tokenizer import normalize_term as _raw_normalize_term
from .tokenizer import sentences as _raw_sentences
from .tokenizer import tokenize as _raw_tokenize
from .vocabulary import TermInterner


class SentenceColumns:
    """One sentence's token stream as parallel columns.

    The columnar data plane's per-sentence working set: token surfaces,
    their lower-cased forms, character offsets, and the per-token
    capitalized / numeric / stopword flags every Step-1 consumer keeps
    re-deriving from :class:`~repro.text.tokenizer.Token` properties.
    Computed in a single regex pass per distinct sentence, with no
    ``Token`` objects at all; each column is exactly what the
    corresponding property chain would have produced (``lowers[i] ==
    tokens[i].lower``, ``caps[i] == tokens[i].is_capitalized``, ...).
    """

    __slots__ = ("texts", "lowers", "starts", "ends", "caps", "nums", "stops")

    def __init__(self, sentence: str) -> None:
        spans = [match.span() for match in _WORD_RE.finditer(sentence)]
        texts = [sentence[start:end] for start, end in spans]
        self.texts = texts
        self.starts = [span[0] for span in spans]
        self.ends = [span[1] for span in spans]
        lowers = list(map(str.lower, texts))
        self.lowers = lowers
        firsts = [text[0] for text in texts]
        self.caps = list(map(str.isupper, firsts))
        self.nums = list(map(str.isdigit, firsts))
        # Stopword flags over the lower-cased forms: ``is_stopword``
        # lower-cases its argument, so membership over ``lowers`` is the
        # same predicate.
        self.stops = list(map(STOPWORDS.__contains__, lowers))

    def __len__(self) -> int:
        return len(self.texts)


class TextMemo:
    """Per-chunk memo tables over the pure text functions.

    Holds a :class:`~repro.text.vocabulary.TermInterner` (which memoizes
    normalization and assigns term ids) plus tokenization/sentence
    caches keyed by the exact input string.  CPython caches a string's
    hash, so repeated lookups on long document texts cost one dict probe.
    """

    __slots__ = ("interner", "_tokens", "_sentences", "_columns")

    def __init__(self, interner: TermInterner | None = None) -> None:
        self.interner = interner if interner is not None else TermInterner()
        self._tokens: dict[str, list[Token]] = {}
        self._sentences: dict[str, list[str]] = {}
        self._columns: dict[str, SentenceColumns] = {}

    def tokenize(self, text: str) -> list[Token]:
        tokens = self._tokens.get(text)
        if tokens is None:
            tokens = self._tokens[text] = _raw_tokenize(text)
        return tokens

    def sentences(self, text: str) -> list[str]:
        result = self._sentences.get(text)
        if result is None:
            result = self._sentences[text] = _raw_sentences(text)
        return result

    def normalize(self, surface: str) -> str:
        return self.interner.normalize(surface)

    def sentence_columns(self, sentence: str) -> SentenceColumns:
        columns = self._columns.get(sentence)
        if columns is None:
            columns = self._columns[sentence] = SentenceColumns(sentence)
        return columns


_ACTIVE: ContextVar[TextMemo | None] = ContextVar("repro_text_memo", default=None)


def active_memo() -> TextMemo | None:
    """The :class:`TextMemo` of the current context, if any."""
    return _ACTIVE.get()


@contextmanager
def use_text_memo(memo: TextMemo) -> Iterator[TextMemo]:
    """Activate ``memo`` for the current context (chunk worker scope)."""
    token = _ACTIVE.set(memo)
    try:
        yield memo
    finally:
        _ACTIVE.reset(token)


class MemoizedChunk:
    """Picklable wrapper running a chunk worker under a TextMemo.

    The columnar data plane wraps every per-chunk worker with this: the
    chunk's text functions are memoized against one private memo, which
    dies with the chunk.  ContextVars do not propagate into pool
    threads, so activation must happen *inside* the worker — which this
    wrapper guarantees for the thread and process backends alike.

    When a memo is already active — an inline run wrapped the whole
    pass, or a pool worker armed a persistent memo via
    :func:`install_worker_memo` — the chunk reuses it instead of
    shadowing it, so tokenizations survive across chunks and across the
    statistics/extraction passes.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[list], object]) -> None:
        self._fn = fn

    def __call__(self, chunk: list) -> object:
        if _ACTIVE.get() is not None:
            return self._fn(chunk)
        with use_text_memo(TextMemo()):
            return self._fn(chunk)


def install_worker_memo() -> None:
    """Pool initializer: arm a persistent :class:`TextMemo` in a worker.

    Runs once per pool worker (thread or process), so every chunk the
    worker executes shares one memo and a document tokenized for the
    statistics pass is still cached when the extraction pass lands on
    the same worker.  The memo's lifetime is the pool's lifetime; its
    size is bounded by the corpus the pool processes.
    """
    if _ACTIVE.get() is None:
        _ACTIVE.set(TextMemo())


def tokenize(text: str) -> list[Token]:
    """Context-memoized :func:`repro.text.tokenizer.tokenize`."""
    memo = _ACTIVE.get()
    if memo is None:
        return _raw_tokenize(text)
    return memo.tokenize(text)


def sentences(text: str) -> list[str]:
    """Context-memoized :func:`repro.text.tokenizer.sentences`."""
    memo = _ACTIVE.get()
    if memo is None:
        return _raw_sentences(text)
    return memo.sentences(text)


def normalize_term(term: str) -> str:
    """Context-memoized :func:`repro.text.tokenizer.normalize_term`."""
    memo = _ACTIVE.get()
    if memo is None:
        return _raw_normalize_term(term)
    return memo.interner.normalize(term)
