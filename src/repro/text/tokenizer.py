"""Word and sentence tokenization.

The tokenizer is intentionally simple and deterministic: it recognises
words (with internal apostrophes and hyphens), numbers, and treats
everything else as punctuation.  Character offsets are preserved so that
extractors can report spans into the original text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_WORD_RE = re.compile(
    r"""
    [A-Za-z]+(?:['\-][A-Za-z]+)*   # words, possibly hyphenated/apostrophed
    | \d+(?:[.,]\d+)*              # numbers like 1,000 or 3.14
    """,
    re.VERBOSE,
)

# Sentence boundaries: ., !, ? followed by whitespace and an uppercase letter,
# digit or quote.  Common abbreviations are protected.
_ABBREVIATIONS = frozenset(
    {
        "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc",
        "inc", "ltd", "co", "corp", "gov", "sen", "rep", "gen", "u.s", "u.n",
    }
)

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+(?=[\"'A-Z0-9])")


@dataclass(frozen=True)
class Token:
    """A single token with its surface form and character span."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        """Lower-cased surface form."""
        return self.text.lower()

    @property
    def is_capitalized(self) -> bool:
        """True when the token starts with an uppercase letter."""
        return bool(self.text) and self.text[0].isupper()

    @property
    def is_numeric(self) -> bool:
        """True when the token is a number."""
        return bool(self.text) and self.text[0].isdigit()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into :class:`Token` objects with offsets."""
    return [
        Token(match.group(0), match.start(), match.end())
        for match in _WORD_RE.finditer(text)
    ]


def word_tokens(text: str) -> list[str]:
    """Return just the lower-cased word strings of ``text``."""
    return [token.lower for token in tokenize(text)]


def _merge_abbreviation_splits(pieces: list[str]) -> Iterator[str]:
    """Re-join sentence pieces that were split after an abbreviation."""
    buffer = ""
    for piece in pieces:
        candidate = f"{buffer} {piece}".strip() if buffer else piece
        last_word = candidate.rstrip(". ").rsplit(" ", 1)[-1].lower()
        if candidate.endswith(".") and last_word in _ABBREVIATIONS:
            buffer = candidate
        else:
            buffer = ""
            yield candidate
    if buffer:
        yield buffer


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Handles the common newswire abbreviations (``Mr.``, ``Dr.``,
    ``Corp.``, ...) without splitting after them.
    """
    stripped = text.strip()
    if not stripped:
        return []
    pieces = _SENTENCE_SPLIT_RE.split(stripped)
    return [piece for piece in _merge_abbreviation_splits(pieces) if piece]


def normalize_term(term: str) -> str:
    """Normalize a term for frequency counting and matching.

    Lower-cases, collapses internal whitespace, and strips surrounding
    punctuation.  Multi-word phrases keep single spaces between words.
    """
    words = _WORD_RE.findall(term)
    return " ".join(word.lower() for word in words)
