"""A standard English stopword list.

The list mirrors the common SMART/IR stopword inventories used in the
faceted-search literature; it is used to filter candidate terms before
frequency analysis and phrase extraction.
"""

from __future__ import annotations

STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all also am an and any are aren't as at
    be because been before being below between both but by can cannot could
    couldn't did didn't do does doesn't doing don't down during each few for
    from further had hadn't has hasn't have haven't having he he'd he'll he's
    her here here's hers herself him himself his how how's i i'd i'll i'm
    i've if in into is isn't it it's its itself let's me more most mustn't my
    myself no nor not of off on once only or other ought our ours ourselves
    out over own said same say says shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's will with won't would wouldn't you you'd you'll you're
    you've your yours yourself yourselves
    one two three four five six seven eight nine ten
    mr mrs ms dr according told via per amid among upon yet however
    """.split()
)


#: Common nouns that frequently open newswire sentences capitalized
#: ("People familiar with...", "Officials said...").  NE taggers and
#: entity linkers treat these as ordinary words, not entity mentions.
COMMON_SENTENCE_OPENERS: frozenset[str] = frozenset(
    """
    people officials supporters critics residents analysts observers
    questions investors doctors experts lawmakers authorities leaders
    sources aides prosecutors economists scientists researchers voters
    """.split()
)


def is_stopword(word: str) -> bool:
    """Return True when ``word`` (any case) is a stopword."""
    return word.lower() in STOPWORDS


def is_common_opener(word: str) -> bool:
    """True for common nouns that open sentences capitalized."""
    return word.lower() in COMMON_SENTENCE_OPENERS
