"""Rank/frequency utilities and Zipf-law fitting.

Section IV-C of the paper motivates the rank-based shift function and the
log-likelihood statistic with the Zipfian (power-law) shape of term
frequencies.  This module provides the binning function

    ``B(t) = ceil(log2(Rank(t)))``

used by rank-based shifting, plus a least-squares Zipf fit used in tests
to verify the synthetic corpus actually has a power-law term distribution.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping


def rank_bin(rank: int) -> int:
    """Bin assignment ``B(t) = ceil(log2(Rank(t)))``; rank 1 maps to bin 0."""
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    return math.ceil(math.log2(rank)) if rank > 1 else 0


def rank_terms(frequencies: Mapping[str, int]) -> dict[str, int]:
    """Assign deterministic 1-based ranks by decreasing frequency."""
    ordered = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
    return {term: index + 1 for index, (term, _) in enumerate(ordered)}


def zipf_fit(frequencies: Iterable[int]) -> tuple[float, float]:
    """Fit ``log f = log C - s * log rank`` by least squares.

    Returns ``(s, C)`` — the Zipf exponent and the scale constant.  Raises
    ``ValueError`` when fewer than two positive frequencies are supplied.
    """
    values = sorted((f for f in frequencies if f > 0), reverse=True)
    if len(values) < 2:
        raise ValueError("need at least two positive frequencies to fit")
    xs = [math.log(rank) for rank in range(1, len(values) + 1)]
    ys = [math.log(value) for value in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate rank distribution")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys, strict=True))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return -slope, math.exp(intercept)
