"""Corpus-level term statistics.

The comparative frequency analysis of the paper (Section IV-C) works on
*document frequencies* ``df(t)`` and frequency ranks ``Rank(t)`` in two
collections (original and contextualized).  :class:`Vocabulary` maintains
those statistics incrementally and exposes rank lookups.

:class:`TermInterner` is the string↔id table of the columnar data plane
(:mod:`repro.core.columnar`): every normalized term receives a stable
``int32`` id in first-seen order, and normalization itself is memoized
per distinct surface form so a batch never pays the regex in
:func:`repro.text.tokenizer.normalize_term` twice for the same string.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from types import MappingProxyType

from .tokenizer import normalize_term


class TermInterner:
    """Append-only bidirectional string ↔ ``int32`` id table.

    Ids are assigned in first-seen order and never change or get
    reused, so any structure keyed by id (df vectors, postings arrays,
    shared segments) stays valid as the vocabulary grows.  The table
    also memoizes :func:`~repro.text.tokenizer.normalize_term` per
    distinct *surface* form: the regex runs once per distinct string
    per interner, not once per occurrence.
    """

    __slots__ = ("_ids", "_terms", "_surface_ids")

    #: Id returned for surfaces that normalize to the empty string.
    EMPTY = -1

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._terms: list[str] = []
        self._surface_ids: dict[str, int] = {}

    def intern(self, term: str) -> int:
        """Id of an already-normalized ``term``, assigning on first use."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def normalized_id(self, surface: str) -> int:
        """Id of ``normalize_term(surface)``; :data:`EMPTY` when empty.

        The normalization result is cached per distinct surface form,
        so repeated occurrences of the same string cost one dict hit.
        """
        term_id = self._surface_ids.get(surface)
        if term_id is None:
            normalized = normalize_term(surface)
            term_id = self.intern(normalized) if normalized else self.EMPTY
            self._surface_ids[surface] = term_id
        return term_id

    def normalize(self, surface: str) -> str:
        """Memoized :func:`~repro.text.tokenizer.normalize_term`."""
        term_id = self.normalized_id(surface)
        return "" if term_id == self.EMPTY else self._terms[term_id]

    def normalized_ids(self, surfaces: Iterable[str]) -> list[int]:
        """Bulk :meth:`normalized_id` over a surface stream."""
        memo = self._surface_ids
        get = memo.get
        out: list[int] = []
        append = out.append
        for surface in surfaces:
            term_id = get(surface)
            if term_id is None:
                normalized = normalize_term(surface)
                term_id = self.intern(normalized) if normalized else self.EMPTY
                memo[surface] = term_id
            append(term_id)
        return out

    def intern_many(self, terms: Iterable[str]) -> list[int]:
        """Bulk :meth:`intern`: one call for a whole term stream.

        Same ids in the same order; the point is amortizing the method
        dispatch the statistics fold would otherwise pay per occurrence.
        """
        ids = self._ids
        table = self._terms
        get = ids.get
        out: list[int] = []
        append = out.append
        for term in terms:
            term_id = get(term)
            if term_id is None:
                term_id = len(table)
                ids[term] = term_id
                table.append(term)
            append(term_id)
        return out

    def id_of(self, term: str) -> int | None:
        """Id of an exact (normalized) term, or None when never seen."""
        return self._ids.get(term)

    def term(self, term_id: int) -> str:
        """The normalized term for ``term_id``."""
        return self._terms[term_id]

    def terms(self) -> list[str]:
        """All interned terms, indexable by id.  Treat as read-only."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._ids


@dataclass(frozen=True)
class TermStats:
    """Statistics for one term inside a :class:`Vocabulary`."""

    term: str
    term_frequency: int
    document_frequency: int
    rank: int


class Vocabulary:
    """Term/document frequency table over a collection of documents.

    Ranks are 1-based and assigned by decreasing document frequency with
    ties broken alphabetically, so that ranking is deterministic.
    """

    def __init__(self) -> None:
        self._tf: Counter[str] = Counter()
        self._df: Counter[str] = Counter()
        self._documents = 0
        self._ranks: dict[str, int] | None = None

    # -- construction --------------------------------------------------------

    def add_document(self, terms: Iterable[str]) -> None:
        """Register one document given its (possibly repeated) terms."""
        term_list = [term for term in terms if term]
        self._documents += 1
        self._tf.update(term_list)
        self._df.update(set(term_list))
        self._ranks = None

    def remove_document(self, terms: Iterable[str]) -> None:
        """Unregister one document previously added with the same terms.

        The exact inverse of :meth:`add_document`: term/document
        frequencies drop by the same amounts and entries reaching zero
        are deleted, so a vocabulary that has a document removed is
        indistinguishable from one that never saw it.  The incremental
        pipeline uses this to repair the contextualized statistics when
        a document's expanded term set changes.
        """
        term_list = [term for term in terms if term]
        if self._documents < 1:
            raise ValueError("remove_document on an empty vocabulary")
        counts = Counter(term_list)
        for term, count in counts.items():
            have = self._df.get(term, 0)
            if have < 1 or self._tf.get(term, 0) < count:
                raise ValueError(
                    f"remove_document: term {term!r} was never added "
                    "with these frequencies"
                )
        self._documents -= 1
        for term, count in counts.items():
            self._tf[term] -= count
            if self._tf[term] == 0:
                del self._tf[term]
            self._df[term] -= 1
            if self._df[term] == 0:
                del self._df[term]
        self._ranks = None

    def copy(self) -> "Vocabulary":
        """An independent snapshot of the statistics."""
        clone = Vocabulary()
        clone._tf = Counter(self._tf)
        clone._df = Counter(self._df)
        clone._documents = self._documents
        return clone

    # -- size accessors -------------------------------------------------------

    @property
    def document_count(self) -> int:
        """Number of documents registered."""
        return self._documents

    @property
    def term_count(self) -> int:
        """Number of distinct terms."""
        return len(self._df)

    def __contains__(self, term: str) -> bool:
        return term in self._df

    def __len__(self) -> int:
        return len(self._df)

    def terms(self) -> list[str]:
        """All distinct terms (unordered)."""
        return list(self._df)

    # -- frequency accessors ----------------------------------------------------

    def tf(self, term: str) -> int:
        """Total occurrences of ``term`` across all documents."""
        return self._tf.get(term, 0)

    def df(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return self._df.get(term, 0)

    def _rank_table(self) -> dict[str, int]:
        if self._ranks is None:
            ordered = sorted(self._df.items(), key=lambda item: (-item[1], item[0]))
            self._ranks = {term: index + 1 for index, (term, _) in enumerate(ordered)}
        return self._ranks

    def rank(self, term: str) -> int:
        """1-based rank of ``term`` by document frequency.

        Unknown terms rank below every known term (``term_count + 1``),
        matching the treatment of absent terms in the shift analysis.
        """
        return self._rank_table().get(term, len(self._df) + 1)

    def df_map(self) -> Mapping[str, int]:
        """Read-only term → document-frequency view.

        A live view of the internal table — bulk consumers (the
        vectorized selection stage) read it directly instead of paying
        one method call per term.
        """
        return MappingProxyType(self._df)

    def rank_map(self) -> Mapping[str, int]:
        """Read-only term → rank snapshot (computed lazily, like
        :meth:`rank`).

        The snapshot reflects the vocabulary at call time; adding
        documents afterwards invalidates it, so take it only once the
        vocabulary is fully built.
        """
        return MappingProxyType(self._rank_table())

    def stats(self, term: str) -> TermStats:
        """Return the full :class:`TermStats` for ``term``."""
        return TermStats(
            term=term,
            term_frequency=self.tf(term),
            document_frequency=self.df(term),
            rank=self.rank(term),
        )

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """Terms with highest document frequency, ``(term, df)`` pairs."""
        ordered = sorted(self._df.items(), key=lambda item: (-item[1], item[0]))
        return ordered if n is None else ordered[:n]
