"""Text-processing substrate: tokenization, stemming, phrases, statistics.

This subpackage is self-contained (no third-party NLP dependency) and
provides the primitives the rest of the library builds on:

* :mod:`repro.text.tokenizer` — word and sentence tokenization,
* :mod:`repro.text.stopwords` — a standard English stopword list,
* :mod:`repro.text.stemmer` — a full Porter stemmer,
* :mod:`repro.text.phrases` — n-gram and candidate-phrase extraction,
* :mod:`repro.text.vocabulary` — corpus term statistics (tf, df, ranks),
* :mod:`repro.text.zipf` — rank/frequency utilities and Zipf fitting.
"""

from .tokenizer import Token, normalize_term, sentences, tokenize, word_tokens
from .stopwords import STOPWORDS, is_stopword
from .stemmer import PorterStemmer, stem
from .phrases import candidate_phrases, ngrams
from .vocabulary import TermStats, Vocabulary
from .zipf import rank_bin, rank_terms, zipf_fit

__all__ = [
    "Token",
    "normalize_term",
    "sentences",
    "tokenize",
    "word_tokens",
    "STOPWORDS",
    "is_stopword",
    "PorterStemmer",
    "stem",
    "candidate_phrases",
    "ngrams",
    "TermStats",
    "Vocabulary",
    "rank_bin",
    "rank_terms",
    "zipf_fit",
]
