"""EXP-T4 — Table IV: recall on a month of NYT stories (MNYT)."""

from repro.corpus.datasets import DatasetName
from repro.eval.recall import RecallStudy
from repro.corpus import build_corpus


def test_table4_recall_mnyt(benchmark, config, builder, save_result):
    study = RecallStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.MNYT, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table4_recall_mnyt", matrix.format_table())
    assert matrix.value("All", "All") == max(matrix.values.values())
