"""Validate the machine-readable serving benchmark payload.

CI's bench-smoke job runs ``bench_serving.py`` against a tiny corpus and
then calls this script on the ``BENCH_serving.json`` it wrote: the
payload must match schema ``repro.bench_serving/1``, report latency
percentiles from at least 8 concurrent clients with zero failed
requests, and clear a minimum aggregate throughput.  Keeping the gate in
a script (not inside the benchmark) means any consumer of the JSON —
CI, a regression dashboard, a local run — applies the same contract.

Usage::

    python benchmarks/check_serving_json.py [path] [--min-rps X]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

EXPECTED_SCHEMA = "repro.bench_serving/1"

#: The service must answer at least this many requests/second in
#: aggregate (deliberately modest: CI runners are slow and shared).
DEFAULT_MIN_RPS = 20.0

#: The acceptance floor on simulated concurrent clients.
MIN_CLIENTS = 8

#: Required numeric top-level keys.
REQUIRED_NUMERIC = (
    "clients",
    "requests",
    "errors",
    "p50_ms",
    "p99_ms",
    "rps",
    "elapsed_s",
)

#: Required numeric keys in the ``artifact`` section.
ARTIFACT_NUMERIC = ("documents", "facets", "nodes")


def validate(payload: dict, min_rps: float) -> list[str]:
    """Return every contract violation found (empty list = valid)."""
    problems: list[str] = []
    schema = payload.get("schema")
    if schema != EXPECTED_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    for key in REQUIRED_NUMERIC:
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{key} missing or non-numeric")
    artifact = payload.get("artifact")
    if not isinstance(artifact, dict):
        problems.append("missing section 'artifact'")
    else:
        for key in ARTIFACT_NUMERIC:
            if not isinstance(artifact.get(key), (int, float)):
                problems.append(f"artifact.{key} missing or non-numeric")
        if not isinstance(artifact.get("checksum"), str):
            problems.append("artifact.checksum missing or not a string")
    if problems:
        return problems
    if payload["clients"] < MIN_CLIENTS:
        problems.append(
            f"clients {payload['clients']} below minimum {MIN_CLIENTS}"
        )
    if payload["errors"] != 0:
        problems.append(f"{payload['errors']} requests failed")
    if payload["requests"] < payload["clients"]:
        problems.append("fewer requests than clients — load loop did not run")
    if payload["p99_ms"] < payload["p50_ms"]:
        problems.append(
            f"p99 {payload['p99_ms']:.1f} ms below p50 "
            f"{payload['p50_ms']:.1f} ms — percentiles are inconsistent"
        )
    if payload["rps"] < min_rps:
        problems.append(
            f"rps {payload['rps']:.1f} below minimum {min_rps:.1f}"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_serving.json",
        help="payload to validate (default: BENCH_serving.json)",
    )
    parser.add_argument(
        "--min-rps",
        type=float,
        default=DEFAULT_MIN_RPS,
        help="minimum aggregate requests/second (default: %(default)s)",
    )
    options = parser.parse_args(argv)
    path = pathlib.Path(options.path)
    if not path.is_file():
        print(f"FAIL: {path} does not exist", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload, options.min_rps)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"OK: {path} matches {EXPECTED_SCHEMA}; {payload['clients']} clients, "
        f"{payload['requests']} requests, p50 {payload['p50_ms']:.1f} ms, "
        f"p99 {payload['p99_ms']:.1f} ms, {payload['rps']:.0f} req/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
