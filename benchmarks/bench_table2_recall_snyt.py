"""EXP-T2 — Table II: recall of extracted facet terms on SNYT.

Extractor x resource grid; the paper's qualitative shape should hold:
the All x All cell is the best, Wikipedia Graph is the strongest single
resource, Wikipedia Synonyms the weakest, and WordNet collapses when
paired with the named-entity extractor.
"""

from repro.corpus.datasets import DatasetName
from repro.eval.recall import RecallStudy
from repro.corpus import build_corpus


def test_table2_recall_snyt(benchmark, config, builder, save_result):
    study = RecallStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.SNYT, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table2_recall_snyt", matrix.format_table())

    # Shape checks from the paper.
    assert matrix.value("All", "All") == max(matrix.values.values())
    assert matrix.value("Wikipedia Graph", "All") > matrix.value("Google", "All")
    assert matrix.value("Google", "All") > matrix.value("WordNet Hypernyms", "All")
    assert (
        matrix.value("WordNet Hypernyms", "NE")
        < matrix.value("WordNet Hypernyms", "Yahoo")
    )
    assert (
        matrix.value("Wikipedia Synonyms", "All")
        < matrix.value("Wikipedia Graph", "All")
    )
