"""Ablation — the Sanderson-Croft subsumption threshold (paper: 0.8).

Sweeps P(x|y) thresholds and reports hierarchy structure (branching,
narrowing, coverage) plus oracle precision: low thresholds over-attach
(more branching, worse placement), high thresholds shatter the forest.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.hierarchy import build_facet_hierarchies
from repro.core.selection import select_facet_terms
from repro.eval.goldset import build_gold_set
from repro.eval.hierarchy_metrics import hierarchy_metrics
from repro.eval.precision import PrecisionStudy
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors


def test_ablation_threshold(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    gold = build_gold_set(corpus, config, builder.world)
    study = PrecisionStudy(config, builder=builder)
    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    annotated = annotate_database(gold.documents, extractors)
    contextualized = contextualize(
        annotated, study._resource_list("Wikipedia Graph")
    )
    candidates = select_facet_terms(contextualized, top_k=150)

    def run():
        rows = {}
        for threshold in (0.6, 0.7, 0.8, 0.9):
            hierarchies = build_facet_hierarchies(
                candidates,
                contextualized,
                threshold=threshold,
                edge_validator=builder.edge_evidence,
            )
            metrics = hierarchy_metrics(hierarchies, len(gold.documents))
            judged = study.judge_hierarchies(
                hierarchies, cell=f"thresh-{threshold}"
            )
            rows[threshold] = (
                metrics.facets,
                metrics.branching_facets,
                metrics.mean_narrowing,
                study.precision_of(judged),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_threshold",
        "\n".join(
            f"threshold {t}: {facets} facets ({branching} branching), "
            f"narrowing {narrowing:.2f}, precision {precision:.3f}"
            for t, (facets, branching, narrowing, precision) in sorted(
                rows.items()
            )
        ),
    )
    # Lower thresholds attach more (fewer roots / more branching).
    assert rows[0.6][0] <= rows[0.9][0]
    for row in rows.values():
        assert 0 <= row[3] <= 1
