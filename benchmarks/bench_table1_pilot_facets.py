"""EXP-T1 — Table I: facets identified in the pilot study (Section III).

Regenerates the Table I inventory: the most common facets twelve
annotators assign to a day of stories, with prominent sub-facets.
"""

from repro.harness.tables import run_pilot_study


def test_table1_pilot_facets(benchmark, config, save_result):
    result = benchmark.pedantic(
        lambda: run_pilot_study(config), rounds=1, iterations=1
    )
    save_result("table1_pilot_facets", result.format_table())
    # The paper's eight pilot facets should all surface.
    facets = set(result.top_facets(8))
    assert {"Location", "People", "Markets", "Event"} <= facets
    assert "Leaders" in result.top_subfacets("People")
    assert "Corporations" in result.top_subfacets("Markets")
