"""Ablation — the Wikipedia Graph top-k (the paper fixes k = 50).

Sweeping k shows recall saturating: small k misses context terms,
larger k adds little beyond the page out-degree.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.selection import select_facet_terms
from repro.eval.goldset import build_gold_set
from repro.eval.recall import RecallStudy
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors
from repro.resources.wiki_graph import WikipediaGraphResource
from repro.wikipedia.graph import WikipediaGraph


def test_ablation_topk(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    gold = build_gold_set(corpus, config, builder.world)
    study = RecallStudy(config, builder=builder)
    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    annotated = annotate_database(gold.documents, extractors)
    graph = WikipediaGraph(builder.substrates.wikipedia)

    def run():
        recalls = {}
        for k in (2, 5, 15, 50):
            resource = WikipediaGraphResource(graph, top_k=k)
            contextualized = contextualize(annotated, [resource])
            candidates = select_facet_terms(contextualized, top_k=None)
            recalls[k] = study.recall(gold.terms, [c.term for c in candidates])
        return recalls

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_topk",
        "\n".join(f"k={k}: recall {r:.3f}" for k, r in sorted(recalls.items())),
    )
    ks = sorted(recalls)
    assert recalls[ks[0]] <= recalls[ks[-1]]
    # Saturation: going 15 -> 50 changes little.
    assert abs(recalls[50] - recalls[15]) < 0.15
