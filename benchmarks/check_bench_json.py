"""Validate the machine-readable benchmark payloads against their contracts.

One gate for all three benchmark JSON artifacts.  CI's bench-smoke job
runs ``bench_efficiency.py`` / ``bench_incremental.py`` /
``bench_serving.py`` on a tiny corpus and then calls this script on the
``BENCH_<name>.json`` each wrote::

    python benchmarks/check_bench_json.py efficiency  --min-speedup 2.0 \
        --min-columnar-speedup 4.0
    python benchmarks/check_bench_json.py incremental --min-speedup 3.0
    python benchmarks/check_bench_json.py serving     --min-rps 20

Two layers of validation:

* **Contract layer** (shared, derived — never hand-maintained): the
  devtools contract extractor (:mod:`repro.devtools.contracts`) parses
  the benchmark script that *wrote* the payload, harvests its
  schema-tagged writer dict, and this script checks that the payload
  carries the expected schema id and every statically-declared writer
  key.  Renaming a key in the benchmark without bumping the schema now
  fails the gate even before any threshold is looked at.
* **Semantic layer** (per bench): the numeric floors and
  cross-field invariants the old per-bench scripts enforced — minimum
  speedup / RPS, zero failed requests, byte-identical output flags,
  percentile ordering.  Thresholds stay CLI arguments so the smoke job
  can relax the reference-scale floors.

Keeping the gate in a script (not inside the benchmarks) means any
consumer of the JSON — CI, a regression dashboard, a local run —
applies the same contract.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.devtools.contracts import extract_contracts  # noqa: E402
from repro.devtools.project import ProjectModel  # noqa: E402


class BenchSpec:
    """One benchmark's artifact contract: schema, writer script, checks."""

    def __init__(self, name: str, schema: str, writer: str, semantic) -> None:
        self.name = name
        self.schema = schema
        self.writer = _REPO_ROOT / "benchmarks" / writer
        self.default_path = f"BENCH_{name}.json"
        self.semantic = semantic


def _collect_keys(value, out: set[str]) -> None:
    """Every mapping key anywhere in a decoded JSON payload."""
    if isinstance(value, dict):
        for key, child in value.items():
            out.add(key)
            _collect_keys(child, out)
    elif isinstance(value, list):
        for child in value:
            _collect_keys(child, out)


def contract_problems(spec: BenchSpec, payload: dict) -> list[str]:
    """Schema-id and writer-key drift between payload and bench script."""
    problems: list[str] = []
    if payload.get("schema") != spec.schema:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {spec.schema!r}"
        )
    contracts = extract_contracts(ProjectModel.from_paths([spec.writer]))
    writers = [
        site
        for site in contracts.payload_sites
        if site.role == "writer" and site.schema_id == spec.schema
    ]
    if not writers:
        problems.append(
            f"{spec.writer.name} declares no writer of schema {spec.schema!r} "
            "(contract extraction found nothing to check against)"
        )
        return problems
    declared: set[str] = set()
    for site in writers:
        declared.update(site.keys)
    present: set[str] = set()
    _collect_keys(payload, present)
    for key in sorted(declared - present):
        problems.append(
            f"payload is missing key {key!r} declared by the writer in "
            f"{spec.writer.name}"
        )
    return problems


def _numeric(payload: dict, dotted: str) -> "float | None":
    """The numeric value at a dotted path, or None when absent/non-numeric."""
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _require_numeric(payload: dict, keys: tuple[str, ...]) -> list[str]:
    return [
        f"{key} missing or non-numeric"
        for key in keys
        if _numeric(payload, key) is None
    ]


# -- efficiency ---------------------------------------------------------------

_EFFICIENCY_NUMERIC = (
    "per_stage.documents",
    "per_stage.extraction_local_s_per_doc",
    "per_stage.expansion_local_s_per_doc",
    "per_stage.selection_s",
    "per_stage.hierarchy_s",
    "parallel.serial_s",
    "parallel.parallel_s",
    "parallel.warm_s",
    "parallel.speedup",
    "parallel.warm_speedup",
    "batched.per_term_s",
    "batched.batched_s",
    "batched.per_term_round_trips",
    "batched.batched_round_trips",
    "batched.speedup",
    "columnar.documents",
    "columnar.legacy_annotation_s",
    "columnar.legacy_contextualization_s",
    "columnar.legacy_selection_s",
    "columnar.columnar_annotation_s",
    "columnar.columnar_contextualization_s",
    "columnar.columnar_selection_s",
    "columnar.legacy_annotation_docs_per_s",
    "columnar.legacy_contextualization_docs_per_s",
    "columnar.legacy_selection_docs_per_s",
    "columnar.columnar_annotation_docs_per_s",
    "columnar.columnar_contextualization_docs_per_s",
    "columnar.columnar_selection_docs_per_s",
    "columnar.annotation_speedup",
    "columnar.contextualization_speedup",
    "columnar.speedup",
    "instrumented.documents",
    "instrumented.workers",
)


def check_efficiency(payload: dict, options) -> list[str]:
    problems = _require_numeric(payload, _EFFICIENCY_NUMERIC)
    speedup = _numeric(payload, "batched.speedup")
    if speedup is not None and speedup < options.min_speedup:
        problems.append(
            f"batched.speedup {speedup:.2f} below minimum "
            f"{options.min_speedup:.2f}"
        )
    batched = payload.get("batched")
    if isinstance(batched, dict) and batched.get("identical_output") is not True:
        problems.append("batched.identical_output is not true")
    columnar_speedup = _numeric(payload, "columnar.annotation_speedup")
    if (
        columnar_speedup is not None
        and columnar_speedup < options.min_columnar_speedup
    ):
        problems.append(
            f"columnar.annotation_speedup {columnar_speedup:.2f} below "
            f"minimum {options.min_columnar_speedup:.2f}"
        )
    columnar = payload.get("columnar")
    if isinstance(columnar, dict) and columnar.get("identical_output") is not True:
        problems.append("columnar.identical_output is not true")
    return problems


def summarize_efficiency(path: pathlib.Path, payload: dict) -> str:
    batched = payload["batched"]
    columnar = payload["columnar"]
    return (
        f"OK: {path} matches {payload['schema']}; batched engine "
        f"{batched['speedup']:.1f}x over per-term "
        f"({batched['batched_round_trips']} vs "
        f"{batched['per_term_round_trips']} round trips), columnar plane "
        f"{columnar['annotation_speedup']:.1f}x on annotation / "
        f"{columnar['speedup']:.1f}x combined "
        f"({columnar['columnar_annotation_docs_per_s']:.0f} docs/s "
        "annotation), output identical"
    )


# -- incremental --------------------------------------------------------------

_INCREMENTAL_NUMERIC = (
    "scale",
    "base_documents",
    "appended_documents",
    "incremental_s",
    "full_s",
    "speedup",
    "checkpoint_save_s",
    "checkpoint_restore_s",
    "facet_terms",
)


def check_incremental(payload: dict, options) -> list[str]:
    problems = _require_numeric(payload, _INCREMENTAL_NUMERIC)
    if payload.get("identical_output") is not True:
        problems.append("identical_output is not true")
    speedup = _numeric(payload, "speedup")
    if speedup is not None and speedup < options.min_speedup:
        problems.append(
            f"speedup {speedup:.2f} below minimum {options.min_speedup:.2f}"
        )
    appended = _numeric(payload, "appended_documents")
    if appended is not None and appended < 1:
        problems.append("appended_documents must be >= 1")
    return problems


def summarize_incremental(path: pathlib.Path, payload: dict) -> str:
    return (
        f"OK: {path} matches {payload['schema']}; append of "
        f"{payload['appended_documents']} docs onto "
        f"{payload['base_documents']} ran {payload['speedup']:.1f}x faster "
        "than full recompute, output byte-identical"
    )


# -- serving ------------------------------------------------------------------

#: The acceptance floor on simulated concurrent clients.
MIN_CLIENTS = 8

_SERVING_NUMERIC = (
    "clients",
    "requests",
    "errors",
    "p50_ms",
    "p99_ms",
    "rps",
    "elapsed_s",
    "artifact.documents",
    "artifact.facets",
    "artifact.nodes",
)


def check_serving(payload: dict, options) -> list[str]:
    problems = _require_numeric(payload, _SERVING_NUMERIC)
    artifact = payload.get("artifact")
    if isinstance(artifact, dict) and not isinstance(
        artifact.get("checksum"), str
    ):
        problems.append("artifact.checksum missing or not a string")
    if problems:
        return problems
    if payload["clients"] < MIN_CLIENTS:
        problems.append(
            f"clients {payload['clients']} below minimum {MIN_CLIENTS}"
        )
    if payload["errors"] != 0:
        problems.append(f"{payload['errors']} requests failed")
    if payload["requests"] < payload["clients"]:
        problems.append("fewer requests than clients — load loop did not run")
    if payload["p99_ms"] < payload["p50_ms"]:
        problems.append(
            f"p99 {payload['p99_ms']:.1f} ms below p50 "
            f"{payload['p50_ms']:.1f} ms — percentiles are inconsistent"
        )
    if payload["rps"] < options.min_rps:
        problems.append(
            f"rps {payload['rps']:.1f} below minimum {options.min_rps:.1f}"
        )
    return problems


def summarize_serving(path: pathlib.Path, payload: dict) -> str:
    return (
        f"OK: {path} matches {payload['schema']}; {payload['clients']} "
        f"clients, {payload['requests']} requests, "
        f"p50 {payload['p50_ms']:.1f} ms, p99 {payload['p99_ms']:.1f} ms, "
        f"{payload['rps']:.0f} req/s"
    )


BENCHES = {
    "efficiency": BenchSpec(
        "efficiency",
        "repro.bench_efficiency/2",
        "bench_efficiency.py",
        check_efficiency,
    ),
    "incremental": BenchSpec(
        "incremental",
        "repro.bench_incremental/1",
        "bench_incremental.py",
        check_incremental,
    ),
    "serving": BenchSpec(
        "serving",
        "repro.bench_serving/1",
        "bench_serving.py",
        check_serving,
    ),
}

_SUMMARIES = {
    "efficiency": summarize_efficiency,
    "incremental": summarize_incremental,
    "serving": summarize_serving,
}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a benchmark JSON payload against its contract."
    )
    parser.add_argument(
        "bench",
        choices=sorted(BENCHES),
        help="which benchmark artifact to validate",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="payload to validate (default: BENCH_<bench>.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="minimum speedup for efficiency/incremental (default: %(default)s)",
    )
    parser.add_argument(
        "--min-columnar-speedup",
        type=float,
        default=3.0,
        help="minimum columnar annotation speedup for efficiency "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-rps",
        type=float,
        default=20.0,
        help="minimum aggregate requests/second for serving "
        "(default: %(default)s)",
    )
    options = parser.parse_args(argv)
    spec = BENCHES[options.bench]
    path = pathlib.Path(options.path or spec.default_path)
    if not path.is_file():
        print(f"FAIL: {path} does not exist", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = contract_problems(spec, payload)
    problems.extend(spec.semantic(payload, options))
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(_SUMMARIES[options.bench](path, payload))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
