"""Shared fixtures for the benchmark suite.

All benchmarks share one configuration (honouring ``REPRO_SCALE``) and
one :class:`~repro.builder.FacetPipelineBuilder`, so the simulated
Wikipedia/web/WordNet substrates and the corpus/gold caches are built
once per session.  Every benchmark writes the table/figure it
regenerates to ``benchmarks/results/<name>.txt`` in addition to timing;
machine-readable payloads go to ``benchmarks/results/<name>.json`` via
``save_json`` so CI (and regression tooling) can gate on numbers instead
of scraping text.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ReproConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    """The session configuration (scale via REPRO_SCALE, default 1.0)."""
    return ReproConfig()


@pytest.fixture(scope="session")
def builder(config: ReproConfig) -> FacetPipelineBuilder:
    """Shared pipeline builder (substrates built once)."""
    return FacetPipelineBuilder(config)


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Persist a machine-readable result under benchmarks/results/.

    ``extra_path`` mirrors the same payload to a second location (the
    efficiency benchmark drops ``BENCH_efficiency.json`` at the repo
    root, where CI picks it up without knowing the results layout).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(
        name: str,
        payload: dict,
        extra_path: pathlib.Path | None = None,
    ) -> None:
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        (RESULTS_DIR / f"{name}.json").write_text(text)
        if extra_path is not None:
            extra_path.write_text(text)

    return _save
