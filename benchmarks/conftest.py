"""Shared fixtures for the benchmark suite.

All benchmarks share one configuration (honouring ``REPRO_SCALE``) and
one :class:`~repro.builder.FacetPipelineBuilder`, so the simulated
Wikipedia/web/WordNet substrates and the corpus/gold caches are built
once per session.  Every benchmark writes the table/figure it
regenerates to ``benchmarks/results/<name>.txt`` in addition to timing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ReproConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    """The session configuration (scale via REPRO_SCALE, default 1.0)."""
    return ReproConfig()


@pytest.fixture(scope="session")
def builder(config: ReproConfig) -> FacetPipelineBuilder:
    """Shared pipeline builder (substrates built once)."""
    return FacetPipelineBuilder(config)


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
