"""EXP-T6 — Table VI: precision on SNB."""

from repro.corpus.datasets import DatasetName
from repro.eval.precision import PrecisionStudy
from repro.corpus import build_corpus


def test_table6_precision_snb(benchmark, config, builder, save_result):
    study = PrecisionStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.SNB, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table6_precision_snb", matrix.format_table())
    assert matrix.value("WordNet Hypernyms", "All") > matrix.value("Google", "All")
