"""EXP-DYN — query-time faceting latency (Section V-D deployment claim).

"In this case the results are ready before the real facet computation,
which then takes only a few seconds and is almost independent of the
collection size": with term/context extraction done offline, computing
facets for a query's result set must take well under a second.
"""

import time

from repro.core.interface import FacetedInterface
from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.dynamic import DynamicFaceter


def test_dynamic_faceting_latency(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    # Offline phase (not timed here): full-collection expansion.
    result = builder.build().run(corpus.documents)
    faceter = DynamicFaceter(
        result.contextualized, edge_validator=builder.edge_evidence
    )
    interface = FacetedInterface.from_result(result)
    queries = ("summit treaty", "vaccine outbreak", "playoffs season")

    def run():
        latencies = []
        for query in queries:
            hits = interface.search(query, limit=150)
            ids = [d.doc_id for d in hits]
            start = time.perf_counter()
            facets = faceter.facets_for(ids)
            latencies.append((query, len(ids), len(facets),
                              time.perf_counter() - start))
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "dynamic_faceting",
        "\n".join(
            f"{query!r}: {hits} results -> {facets} facets in {t*1000:.0f} ms"
            for query, hits, facets, t in latencies
        ),
    )
    for _query, hits, _facets, t in latencies:
        if hits:
            assert t < 2.0  # "a few seconds" with a large margin
