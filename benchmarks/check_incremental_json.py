"""Validate the machine-readable incremental benchmark payload.

CI's bench-smoke job runs ``bench_incremental.py`` on a tiny corpus and
then calls this script against the ``BENCH_incremental.json`` it wrote:
the payload must match schema ``repro.bench_incremental/1``, the append
must be byte-identical to the full recompute, and the speedup must
clear the floor.  The default floor is the reference-scale gate (10x,
the "+1k docs on a 16k archive" scenario); the smoke job passes a
relaxed ``--min-speedup`` because its 800-document archive cannot
amortize the per-batch fixed costs.  Keeping the gate in a script (not
inside the benchmark) means any consumer of the JSON — CI, a regression
dashboard, a local run — applies the same contract.

Usage::

    python benchmarks/check_incremental_json.py [path] [--min-speedup X]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

EXPECTED_SCHEMA = "repro.bench_incremental/1"

#: The reference-scale acceptance floor for append vs full recompute.
DEFAULT_MIN_SPEEDUP = 10.0

#: Numeric keys every payload must carry.
REQUIRED_NUMBERS = (
    "scale",
    "base_documents",
    "appended_documents",
    "incremental_s",
    "full_s",
    "speedup",
    "checkpoint_save_s",
    "checkpoint_restore_s",
    "facet_terms",
)


def validate(payload: dict, min_speedup: float) -> list[str]:
    """Return every contract violation found (empty list = valid)."""
    problems: list[str] = []
    schema = payload.get("schema")
    if schema != EXPECTED_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    for key in REQUIRED_NUMBERS:
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{key} missing or non-numeric")
    if payload.get("identical_output") is not True:
        problems.append("identical_output is not true")
    speedup = payload.get("speedup")
    if isinstance(speedup, (int, float)) and speedup < min_speedup:
        problems.append(
            f"speedup {speedup:.2f} below minimum {min_speedup:.2f}"
        )
    appended = payload.get("appended_documents")
    if isinstance(appended, (int, float)) and appended < 1:
        problems.append("appended_documents must be >= 1")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_incremental.json",
        help="payload to validate (default: BENCH_incremental.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="minimum append-vs-recompute speedup (default: %(default)s)",
    )
    options = parser.parse_args(argv)
    path = pathlib.Path(options.path)
    if not path.is_file():
        print(f"FAIL: {path} does not exist", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload, options.min_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"OK: {path} matches {EXPECTED_SCHEMA}; append of "
        f"{payload['appended_documents']} docs onto "
        f"{payload['base_documents']} ran {payload['speedup']:.1f}x faster "
        "than full recompute, output byte-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
