"""EXP-EFF — Section V-D: per-stage throughput.

Paper account: >= 100 docs/s for local term extraction, the Yahoo web
service at 2-3 s/doc is the bottleneck; expansion with local resources
>= 100 docs/s vs ~1 s/doc for Google; selection takes milliseconds and
hierarchy construction a couple of seconds.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.eval.efficiency import EfficiencyStudy


def test_efficiency(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(200, len(corpus))]
    study = EfficiencyStudy(config, builder)
    report = benchmark.pedantic(lambda: study.run(sample), rounds=1, iterations=1)
    save_result("efficiency", report.format_summary())

    assert report.extraction_local_docs_per_s > 100
    assert report.extraction_with_yahoo_s_per_doc > 2.0
    assert report.expansion_local_docs_per_s > 100
    assert report.expansion_with_google_s_per_doc >= 1.0
    assert report.selection_s < 2.0
    assert report.hierarchy_s < 5.0
