"""EXP-EFF — Section V-D: per-stage throughput, serial vs parallel.

Paper account: >= 100 docs/s for local term extraction, the Yahoo web
service at 2-3 s/doc is the bottleneck; expansion with local resources
>= 100 docs/s vs ~1 s/doc for Google; selection takes milliseconds and
hierarchy construction a couple of seconds.

The columnar comparison times the legacy dict/Counter data plane
against the columnar one (interned term ids, array-backed statistics)
over the local extractors and resources, reporting per-stage CPU
seconds and docs/sec for annotation and contextualization.  Annotation
must be at least 4x faster with byte-identical output; on an otherwise
idle machine the measured numbers are ~5-6x on annotation and ~4.5-5x
on annotation+contextualization combined (contextualization alone
moves less — both planes answer resource queries from the same
memoized substrates).

On top of the paper's numbers, the second half of the benchmark measures
the batch engine (``repro.parallel``): contextualization over a remote
(simulated-latency) resource run serially, sharded across a thread pool,
and replayed against a warm persistent SQLite cache.  The pool must be
at least 2x faster than serial at 4 workers, and the warm cache faster
still — the quantitative case for the paper's "perform term and context
extraction offline" recommendation.  A third comparison pits the batched
query engine (deduplicated bulk round trips + single-flight) against the
per-term path at the same worker count: it must be at least 2x faster
from a cold cache with byte-identical output.

Besides the human-readable table, the benchmark writes a
machine-readable payload to ``benchmarks/results/efficiency.json`` and
mirrors it to ``BENCH_efficiency.json`` at the repo root
(schema ``repro.bench_efficiency/2``, validated in CI by
``benchmarks/check_bench_json.py efficiency``).
"""

import dataclasses
import pathlib

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.eval.efficiency import COMPARISON_LATENCY_SECONDS, EfficiencyStudy

#: Documents used by the serial-vs-parallel comparison (kept smaller
#: than the per-stage sample: the serial leg pays one simulated round
#: trip per distinct important term).
PARALLEL_SAMPLE = 60

#: Schema tag of the machine-readable payload (bump on layout changes).
JSON_SCHEMA = "repro.bench_efficiency/2"

#: Hard floor for the columnar annotation speedup asserted below.  The
#: measured ratio on an idle machine is ~5-6x; the gate sits lower so a
#: noisy shared CI runner (cache pollution inflates CPU time of the
#: larger legacy working set unevenly) cannot fail an honest run.
MIN_COLUMNAR_ANNOTATION_SPEEDUP = 4.0

#: Hard floor for the combined annotation+contextualization speedup
#: (measured ~4.5-5x idle; see the module docstring).
MIN_COLUMNAR_COMBINED_SPEEDUP = 3.0

#: Repo-root mirror of the efficiency payload.
ROOT_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_efficiency.json"


def test_efficiency(benchmark, config, builder, save_result, save_json):
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(200, len(corpus))]
    study = EfficiencyStudy(config, builder)
    report = benchmark.pedantic(lambda: study.run(sample), rounds=1, iterations=1)

    parallel_sample = corpus.documents[: min(PARALLEL_SAMPLE, len(corpus))]
    parallel_report = study.run_parallel_comparison(parallel_sample, workers=4)
    # A slightly longer round trip than the parallel comparison: the
    # batched side is CPU-bound (a handful of bulk round trips), so the
    # ratio it demonstrates is latency-driven and needs the per-term
    # side firmly in latency-bound territory at small REPRO_SCALE too.
    batched_report = study.run_batched_comparison(
        parallel_sample, workers=4, latency_seconds=2 * COMPARISON_LATENCY_SECONDS
    )
    instrumented = study.run_instrumented(parallel_sample, workers=4)
    columnar_report = study.run_columnar_comparison(sample, trials=3)
    save_result(
        "efficiency",
        report.format_summary()
        + "\n\n"
        + parallel_report.format_summary()
        + "\n\n"
        + batched_report.format_summary()
        + "\n\n"
        + columnar_report.format_summary()
        + "\n\n"
        + instrumented.format_summary(),
    )
    save_json(
        "efficiency",
        {
            "schema": JSON_SCHEMA,
            "scale": config.scale,
            "per_stage": dataclasses.asdict(report),
            "parallel": {
                **dataclasses.asdict(parallel_report),
                "speedup": parallel_report.speedup,
                "warm_speedup": parallel_report.warm_speedup,
            },
            "batched": batched_report.as_dict(),
            "columnar": columnar_report.as_dict(),
            "instrumented": instrumented.as_dict(),
        },
        extra_path=ROOT_JSON,
    )

    assert report.extraction_local_docs_per_s > 100
    assert report.extraction_with_yahoo_s_per_doc > 2.0
    assert report.expansion_local_docs_per_s > 100
    assert report.expansion_with_google_s_per_doc >= 1.0
    assert report.selection_s < 2.0
    assert report.hierarchy_s < 5.0

    # The batch engine: 4 workers must at least halve the wall-clock of
    # latency-bound expansion, and a warm persistent cache must answer
    # every distinct term without a single simulated round trip.
    assert parallel_report.speedup >= 2.0
    assert parallel_report.warm_persistent_hits > 0
    assert parallel_report.warm_s < parallel_report.serial_s

    # The batched query engine: deduplicated bulk round trips must at
    # least halve cold-cache wall-clock vs the per-term path at the same
    # worker count, without changing a single byte of output.
    assert batched_report.speedup >= 2.0
    assert batched_report.identical_output
    assert batched_report.batched_round_trips < batched_report.per_term_round_trips

    # The columnar data plane: annotation over interned ids and array
    # folds must beat the dict/Counter plane by the gated factor with
    # byte-identical output, and the combined annotation +
    # contextualization CPU time must clear the combined floor.
    assert columnar_report.annotation_speedup >= MIN_COLUMNAR_ANNOTATION_SPEEDUP
    assert columnar_report.speedup >= MIN_COLUMNAR_COMBINED_SPEEDUP
    assert columnar_report.identical_output
    assert columnar_report.columnar_annotation_docs_per_s > 100
    assert columnar_report.columnar_contextualization_docs_per_s > 100

    # The instrumented run sources its breakdown from the metrics
    # registry: every stage timer must be present and the resources must
    # have recorded their cache traffic.
    assert set(instrumented.stage_seconds) == {
        "annotation",
        "contextualization",
        "selection",
        "hierarchy",
    }
    assert all(s > 0 for s in instrumented.stage_seconds.values())
    assert instrumented.resource_counters
    assert any(
        name.endswith(".misses") or name.endswith(".memory_hits")
        for name in instrumented.resource_counters
    )
