"""EXP-EFF — Section V-D: per-stage throughput, serial vs parallel.

Paper account: >= 100 docs/s for local term extraction, the Yahoo web
service at 2-3 s/doc is the bottleneck; expansion with local resources
>= 100 docs/s vs ~1 s/doc for Google; selection takes milliseconds and
hierarchy construction a couple of seconds.

On top of the paper's numbers, the second half of the benchmark measures
the batch engine (``repro.parallel``): contextualization over a remote
(simulated-latency) resource run serially, sharded across a thread pool,
and replayed against a warm persistent SQLite cache.  The pool must be
at least 2x faster than serial at 4 workers, and the warm cache faster
still — the quantitative case for the paper's "perform term and context
extraction offline" recommendation.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.eval.efficiency import EfficiencyStudy

#: Documents used by the serial-vs-parallel comparison (kept smaller
#: than the per-stage sample: the serial leg pays one simulated round
#: trip per distinct important term).
PARALLEL_SAMPLE = 60


def test_efficiency(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(200, len(corpus))]
    study = EfficiencyStudy(config, builder)
    report = benchmark.pedantic(lambda: study.run(sample), rounds=1, iterations=1)

    parallel_sample = corpus.documents[: min(PARALLEL_SAMPLE, len(corpus))]
    parallel_report = study.run_parallel_comparison(parallel_sample, workers=4)
    instrumented = study.run_instrumented(parallel_sample, workers=4)
    save_result(
        "efficiency",
        report.format_summary()
        + "\n\n"
        + parallel_report.format_summary()
        + "\n\n"
        + instrumented.format_summary(),
    )

    assert report.extraction_local_docs_per_s > 100
    assert report.extraction_with_yahoo_s_per_doc > 2.0
    assert report.expansion_local_docs_per_s > 100
    assert report.expansion_with_google_s_per_doc >= 1.0
    assert report.selection_s < 2.0
    assert report.hierarchy_s < 5.0

    # The batch engine: 4 workers must at least halve the wall-clock of
    # latency-bound expansion, and a warm persistent cache must answer
    # every distinct term without a single simulated round trip.
    assert parallel_report.speedup >= 2.0
    assert parallel_report.warm_persistent_hits > 0
    assert parallel_report.warm_s < parallel_report.serial_s

    # The instrumented run sources its breakdown from the metrics
    # registry: every stage timer must be present and the resources must
    # have recorded their cache traffic.
    assert set(instrumented.stage_seconds) == {
        "annotation",
        "contextualization",
        "selection",
        "hierarchy",
    }
    assert all(s > 0 for s in instrumented.stage_seconds.values())
    assert instrumented.resource_counters
    assert any(
        name.endswith(".misses") or name.endswith(".memory_hits")
        for name in instrumented.resource_counters
    )
