"""EXP-AGR — inter-annotator agreement of the simulated pool.

The paper's protocol depends on agreement thresholds (>= 2 of 5 for
gold terms); this benchmark measures the simulated annotators' Fleiss'
kappa to verify the pool behaves like humans: agreement well above
chance, well below unanimity.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.eval.agreement import measure_agreement


def test_annotator_agreement(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(300, len(corpus))]

    report = benchmark.pedantic(
        lambda: measure_agreement(builder.world, sample, config),
        rounds=1,
        iterations=1,
    )
    save_result("annotator_agreement", report.format_summary())
    assert 0.02 < report.fleiss_kappa < 0.95
    assert report.decisions > 1000
