"""Ablation — both shift functions vs frequency shifting alone.

Section IV-C motivates rank-based shifting: frequency differences alone
favour already-frequent terms.  Requiring both shifts should prune
candidates without losing gold terms disproportionately.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.selection import select_facet_terms
from repro.eval.goldset import build_gold_set
from repro.eval.recall import RecallStudy
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors


def test_ablation_shifts(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    gold = build_gold_set(corpus, config, builder.world)
    study = RecallStudy(config, builder=builder)
    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    annotated = annotate_database(gold.documents, extractors)
    contextualized = contextualize(annotated, study._resource_list("All"))

    def run():
        both = select_facet_terms(
            contextualized, top_k=None, require_both_shifts=True
        )
        freq_only = select_facet_terms(
            contextualized, top_k=None, require_both_shifts=False
        )
        return {
            "both": (
                len(both),
                study.recall(gold.terms, [c.term for c in both]),
            ),
            "frequency-only": (
                len(freq_only),
                study.recall(gold.terms, [c.term for c in freq_only]),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_shifts",
        "\n".join(
            f"{name}: {count} candidates, recall {recall:.3f}"
            for name, (count, recall) in results.items()
        ),
    )
    both_count, both_recall = results["both"]
    freq_count, freq_recall = results["frequency-only"]
    # Rank shifting prunes candidates while recall stays comparable.
    assert both_count <= freq_count
    assert both_recall >= freq_recall * 0.85
