"""EXP-SENS / EXP-GOLD — Section V-B: gold sets and discovery curves.

The paper reports 633 (SNYT), 756 (SNB), 703 (MNYT) gold facet terms —
SNB largest, MNYT in between — and a concave discovery curve (~40% of
terms within the first 100 stories, ~80% within 500).
"""

from repro.harness.experiments import run_experiment
from repro.harness.tables import gold_set_summary


def test_gold_set_sizes(benchmark, config, save_result):
    counts = benchmark.pedantic(
        lambda: gold_set_summary(config), rounds=1, iterations=1
    )
    save_result(
        "gold_set_sizes",
        "\n".join(f"{name}: {count} gold facet terms" for name, count in counts.items()),
    )
    # Ordering from the paper: SNB > MNYT > SNYT (multi-source corpora
    # reach deeper into the entity tail).
    assert counts["SNB"] > counts["SNYT"]
    assert counts["SNB"] >= counts["MNYT"]


def test_discovery_sensitivity(benchmark, config, save_result):
    curves = benchmark.pedantic(
        lambda: run_experiment("EXP-SENS", config), rounds=1, iterations=1
    )
    lines = []
    for dataset, curve in curves.items():
        rendered = ", ".join(f"{n}: {frac:.0%}" for n, frac in sorted(curve.items()))
        lines.append(f"{dataset}: {rendered}")
    save_result("discovery_sensitivity", "\n".join(lines))
    for curve in curves.values():
        checkpoints = sorted(curve)
        values = [curve[c] for c in checkpoints]
        # Concave growth: most terms discovered early, tail keeps growing.
        assert values == sorted(values)
        assert values[0] >= 0.3
        assert values[-1] >= values[0]
