"""EXP-INC — incremental append vs full recompute on a news firehose.

The incremental pipeline's claim is twofold: appending a day's worth of
articles to an already-ingested archive must be much cheaper than
re-running the whole pipeline on the union corpus, and it must change
*nothing* about the output — the facet terms and hierarchies are
byte-identical to a from-scratch run (the differential harness in
``tests/test_incremental_equivalence.py`` certifies the contract; this
benchmark prices it).

Setup: the SNB corpus at the session scale, with the last
``max(10, 1000 * scale)`` documents held out as the append batch — at
reference scale that is the "+1k docs" scenario of a daily news feed
landing on a 16k-document archive.  The benchmark times the single
:meth:`IncrementalExtractor.append` of the held-out batch against a full
:meth:`FacetExtractor.run` over the union, plus the checkpoint
save/restore round trip that a supervised stream would pay per batch.

Speedup scales with the archive/batch ratio: the append pays work
proportional to the batch (stats, extraction, expansion of new and
dirty documents) plus per-batch fixed costs (statistic tables, facet
selection over the pretest set, hierarchy repair) that amortize only
when the archive dwarfs the batch.  The reference-scale gate is >= 10x;
the tiny CI smoke corpus (scale 0.05: 800 base + 50 appended) is gated
at the relaxed floor, like the efficiency benchmark's smoke gate.

The machine-readable payload goes to
``benchmarks/results/incremental.json`` and is mirrored to
``BENCH_incremental.json`` at the repo root (schema
``repro.bench_incremental/1``, validated by
``benchmarks/check_bench_json.py incremental``).
"""

import pathlib
import time

from repro.core.export import to_dict
from repro.corpus import build_corpus
from repro.corpus.datasets import DatasetName
from repro.incremental import CheckpointStore, IncrementalExtractor, canonical_json

#: Schema tag of the machine-readable payload (bump on layout changes).
JSON_SCHEMA = "repro.bench_incremental/1"

#: Repo-root mirror of the payload.
ROOT_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

#: The acceptance floor at reference scale (the "+1k docs" scenario).
FULL_SCALE_MIN_SPEEDUP = 10.0

#: The floor on the tiny smoke corpus, where the 16:1 archive/batch
#: ratio of the reference scenario shrinks to 16:1 * 0.05 and the
#: per-batch fixed costs stop amortizing.
SMOKE_MIN_SPEEDUP = 3.0


def _result_bytes(facet_terms, hierarchies) -> bytes:
    payload = {
        "facet_terms": [
            [c.term, c.df_original, c.df_contextualized, c.score.hex()]
            for c in facet_terms
        ],
        "hierarchies": to_dict(hierarchies, include_docs=True),
    }
    return canonical_json(payload).encode("utf-8")


def test_incremental_append(
    benchmark, config, builder, save_result, save_json, tmp_path
):
    corpus = build_corpus(DatasetName.SNB, config)
    documents = corpus.documents
    append_size = max(10, int(1000 * config.scale))
    append_size = min(append_size, len(documents) // 2)
    base, delta = documents[:-append_size], documents[-append_size:]

    extractor = builder.build_incremental()
    extractor.append(base, batch_id="archive")
    report = benchmark.pedantic(
        lambda: extractor.append(delta, batch_id="daily-feed"),
        rounds=1,
        iterations=1,
    )
    incremental_s = report.seconds

    start = time.perf_counter()
    full = builder.build().run(documents)
    full_s = time.perf_counter() - start

    incremental_bytes = _result_bytes(
        extractor.facet_terms, extractor.hierarchies
    )
    identical = incremental_bytes == _result_bytes(
        full.facet_terms, full.hierarchies
    )
    speedup = full_s / incremental_s if incremental_s > 0 else float("inf")

    # The durability tax a supervised stream pays per batch: one
    # checkpoint save plus the restore a crashed run would perform.
    store = CheckpointStore(tmp_path / "run")
    start = time.perf_counter()
    store.save(extractor.state.to_payload(), sequence=len(extractor.batches_done))
    checkpoint_save_s = time.perf_counter() - start
    start = time.perf_counter()
    restored = IncrementalExtractor.restore(builder.build(), store)
    checkpoint_restore_s = time.perf_counter() - start
    assert restored.batches_done == extractor.batches_done
    assert _result_bytes(restored.facet_terms, restored.hierarchies) == (
        incremental_bytes
    )

    lines = [
        "EXP-INC: incremental append vs full recompute (SNB)",
        f"  archive {len(base)} docs, appended batch {len(delta)} docs",
        f"  incremental append: {incremental_s:.3f}s "
        f"({report.dirty_documents} dirty docs, "
        f"{report.touched_terms} touched terms)",
        f"  full recompute:     {full_s:.3f}s",
        f"  speedup:            {speedup:.1f}x (byte-identical: {identical})",
        f"  checkpoint save {checkpoint_save_s:.3f}s / "
        f"restore {checkpoint_restore_s:.3f}s",
    ]
    save_result("incremental", "\n".join(lines))
    save_json(
        "incremental",
        {
            "schema": JSON_SCHEMA,
            "scale": config.scale,
            "base_documents": len(base),
            "appended_documents": len(delta),
            "dirty_documents": report.dirty_documents,
            "touched_terms": report.touched_terms,
            "incremental_s": incremental_s,
            "full_s": full_s,
            "speedup": speedup,
            "identical_output": identical,
            "checkpoint_save_s": checkpoint_save_s,
            "checkpoint_restore_s": checkpoint_restore_s,
            "facet_terms": len(extractor.facet_terms),
        },
        extra_path=ROOT_JSON,
    )

    assert identical, "incremental append diverged from full recompute"
    floor = (
        FULL_SCALE_MIN_SPEEDUP if config.scale >= 1.0 else SMOKE_MIN_SPEEDUP
    )
    assert speedup >= floor, (
        f"incremental speedup {speedup:.1f}x below {floor:.0f}x floor"
    )
