"""EXP-F4 — Figure 4: the most frequent annotator facet terms.

The sample should be dominated by general concepts (politics,
government, markets, location names) as in the paper's figure.
"""

from repro.harness.figures import figure4_terms


def test_fig4_annotator_terms(benchmark, config, save_result):
    terms = benchmark.pedantic(lambda: figure4_terms(config), rounds=1, iterations=1)
    save_result("fig4_annotator_terms", ", ".join(terms))
    assert len(terms) >= 20
    joined = " ".join(terms)
    assert "politics" in joined or "government" in joined
    assert "location" in joined
