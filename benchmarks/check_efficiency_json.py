"""Validate the machine-readable efficiency benchmark payload.

CI's bench-smoke job runs ``bench_efficiency.py`` on a tiny corpus and
then calls this script against the ``BENCH_efficiency.json`` it wrote:
the payload must match schema ``repro.bench_efficiency/1`` and the
batched query engine must clear its minimum cold-cache speedup over the
per-term path with identical output.  Keeping the gate in a script (not
inside the benchmark) means any consumer of the JSON — CI, a regression
dashboard, a local run — applies the same contract.

Usage::

    python benchmarks/check_efficiency_json.py [path] [--min-speedup X]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

EXPECTED_SCHEMA = "repro.bench_efficiency/1"

#: The acceptance floor for the batched engine vs the per-term path.
DEFAULT_MIN_SPEEDUP = 2.0

#: Required top-level sections and the numeric keys each must carry.
REQUIRED_SECTIONS = {
    "per_stage": (
        "documents",
        "extraction_local_s_per_doc",
        "expansion_local_s_per_doc",
        "selection_s",
        "hierarchy_s",
    ),
    "parallel": ("serial_s", "parallel_s", "warm_s", "speedup", "warm_speedup"),
    "batched": (
        "per_term_s",
        "batched_s",
        "per_term_round_trips",
        "batched_round_trips",
        "speedup",
    ),
    "instrumented": ("documents", "workers"),
}


def validate(payload: dict, min_speedup: float) -> list[str]:
    """Return every contract violation found (empty list = valid)."""
    problems: list[str] = []
    schema = payload.get("schema")
    if schema != EXPECTED_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {EXPECTED_SCHEMA!r}")
    for section, keys in REQUIRED_SECTIONS.items():
        body = payload.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            if not isinstance(body.get(key), (int, float)):
                problems.append(f"{section}.{key} missing or non-numeric")
    batched = payload.get("batched")
    if isinstance(batched, dict):
        speedup = batched.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < min_speedup:
            problems.append(
                f"batched.speedup {speedup:.2f} below minimum {min_speedup:.2f}"
            )
        if batched.get("identical_output") is not True:
            problems.append("batched.identical_output is not true")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_efficiency.json",
        help="payload to validate (default: BENCH_efficiency.json)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="minimum batched-vs-per-term speedup (default: %(default)s)",
    )
    options = parser.parse_args(argv)
    path = pathlib.Path(options.path)
    if not path.is_file():
        print(f"FAIL: {path} does not exist", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"FAIL: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate(payload, options.min_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    batched = payload["batched"]
    print(
        f"OK: {path} matches {EXPECTED_SCHEMA}; batched engine "
        f"{batched['speedup']:.1f}x over per-term "
        f"({batched['batched_round_trips']} vs "
        f"{batched['per_term_round_trips']} round trips), output identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
