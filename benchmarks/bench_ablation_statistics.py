"""Ablation — log-likelihood vs chi-square significance testing.

Section IV-C argues the chi-square test's assumptions fail under
Zipfian term frequencies, so Dunning's log-likelihood is used instead.
This ablation compares the quality of the top-ranked facet terms under
both statistics.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.selection import select_facet_terms
from repro.eval.goldset import build_gold_set
from repro.eval.recall import RecallStudy
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors


def test_ablation_statistics(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    gold = build_gold_set(corpus, config, builder.world)
    study = RecallStudy(config, builder=builder)
    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    annotated = annotate_database(gold.documents, extractors)
    contextualized = contextualize(annotated, study._resource_list("All"))

    def run():
        results = {}
        for statistic in ("log-likelihood", "chi-square"):
            candidates = select_facet_terms(
                contextualized, top_k=200, statistic=statistic
            )
            results[statistic] = study.recall(
                gold.terms, [c.term for c in candidates]
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_statistics",
        "\n".join(
            f"top-200 recall with {name}: {value:.3f}"
            for name, value in results.items()
        ),
    )
    assert results["log-likelihood"] > 0
    assert results["chi-square"] > 0
