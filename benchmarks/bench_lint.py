"""BENCH-LINT — cold vs warm runs of the flow-analysis lint engine.

The incremental cache under ``.repro-lint-cache/`` is the engine's
production-scale story: CI and editors re-run the analyzer constantly,
and almost nothing changes between runs.  This benchmark measures a
cold whole-tree analysis of ``src/repro`` against a warm run backed by
the on-disk cache, asserting that the warm run (a) returns exactly the
same findings and contract database and (b) is at least 5x faster.
"""

import json
import time
from pathlib import Path

from repro.devtools import AnalysisStats, Analyzer, LintCache, render_sarif

#: Warm runs must beat cold runs by at least this factor.
MIN_SPEEDUP = 5.0

#: The concurrency/lifecycle and contract tiers must be part of the
#: cold/warm comparison — a cache bug that silently drops a project-tier
#: rule would otherwise still pass the equality assertion.
REQUIRED_RULES = {
    "ASYNC001",
    "ASYNC002",
    "ASYNC003",
    "LEAK001",
    "RACE002",
    "SQL001",
    "SCHEMA001",
    "OBS002",
    "CFG002",
    "CLI002",
}


def test_lint_cold_vs_warm(benchmark, tmp_path, save_result, save_json):
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    analyzer = Analyzer()
    assert REQUIRED_RULES <= {rule.rule_id for rule in analyzer.rules}

    def cold_run():
        cache = LintCache(tmp_path / "cache", analyzer.signature)
        stats = AnalysisStats()
        contracts = {}
        start = time.perf_counter()
        findings = analyzer.analyze_paths(
            [src], cache=cache, stats=stats, contracts_out=contracts
        )
        elapsed = time.perf_counter() - start
        cache.save()
        return findings, stats, contracts, elapsed

    cold_findings, cold_stats, cold_contracts, cold_s = benchmark.pedantic(
        cold_run, rounds=1, iterations=1
    )

    warm_cache = LintCache(tmp_path / "cache", analyzer.signature)
    warm_stats = AnalysisStats()
    warm_contracts = {}
    start = time.perf_counter()
    warm_findings = analyzer.analyze_paths(
        [src], cache=warm_cache, stats=warm_stats, contracts_out=warm_contracts
    )
    warm_s = time.perf_counter() - start

    speedup = cold_s / warm_s if warm_s else float("inf")
    save_result(
        "lint_cold_vs_warm",
        "\n".join(
            [
                "repro lint: cold vs warm (incremental cache)",
                f"  files analyzed          {cold_stats.files_total}",
                f"  cold run                {cold_s * 1000:8.1f} ms "
                f"({cold_stats.files_reanalyzed} parsed)",
                f"  warm run                {warm_s * 1000:8.1f} ms "
                f"({warm_stats.files_from_cache} from cache)",
                f"  speedup                 {speedup:8.1f}x",
                f"  findings (both runs)    {len(cold_findings)}",
            ]
        ),
    )

    save_json(
        "lint_cold_vs_warm",
        {
            "schema": "repro.bench_lint/1",
            "files_total": cold_stats.files_total,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "findings": len(cold_findings),
            "warm_files_from_cache": warm_stats.files_from_cache,
        },
    )

    assert warm_findings == cold_findings
    assert warm_stats.files_from_cache == warm_stats.files_total
    assert warm_stats.project_from_cache is True
    assert warm_stats.contracts_from_cache is True
    assert speedup >= MIN_SPEEDUP

    # SARIF output (codeFlows included) and the extracted contract
    # database must be byte-identical across runs — the properties the
    # CI `cmp` steps gate on.
    assert render_sarif(cold_findings) == render_sarif(warm_findings)
    assert json.dumps(cold_contracts, sort_keys=True) == json.dumps(
        warm_contracts, sort_keys=True
    )
    assert cold_contracts.get("schema") == "repro.contracts/1"
