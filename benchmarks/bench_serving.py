"""EXP-SRV — faceted-browsing service latency under concurrent load.

The paper's deployment story ("compute term and context extraction
offline ... the faceted interface is then ready at query time") implies
a serving tier: this benchmark builds the read-only ``repro.index/1``
artifact once, starts the stdlib HTTP bridge over :class:`FacetApp`,
and drives it with >= 8 concurrent keep-alive clients issuing a
realistic request mix (facet roots, children listings, multi-facet
drilldowns, keyword drilldowns, document fetches).  Reported numbers:
p50/p99 per-request latency and aggregate requests/second.

Besides the human-readable table, the benchmark writes a
machine-readable payload to ``benchmarks/results/serving.json`` and
mirrors it to ``BENCH_serving.json`` at the repo root (schema
``repro.bench_serving/1``, validated in CI by
``benchmarks/check_bench_json.py serving``).
"""

import http.client
import pathlib
import threading
import time

from repro.core.interface import FacetedInterface
from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.serving import FacetApp, FacetIndex, run_in_thread

#: Concurrent simulated clients (the acceptance floor is 8).
CLIENTS = 8

#: Requests issued by each client over one keep-alive connection.
REQUESTS_PER_CLIENT = 30

#: Schema tag of the machine-readable payload (bump on layout changes).
JSON_SCHEMA = "repro.bench_serving/1"

#: Repo-root mirror of the serving payload.
ROOT_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _request_mix(interface):
    """A deterministic cycle of paths exercising every read endpoint."""
    names = interface.facet_names()
    doc = interface.dice([])[0]
    mix = ["/facets"]
    mix += [f"/facets/{name}/children" for name in names[:3]]
    mix += [f"/drilldown?facet={name}&limit=10" for name in names[:2]]
    if len(names) >= 2:
        mix.append(f"/drilldown?facet={names[0]}&facet={names[1]}")
    mix += ["/drilldown?q=minister&limit=10", f"/documents/{doc.doc_id}"]
    return mix


def _client_worker(host, port, paths, count, latencies, failures, barrier):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        barrier.wait()
        for i in range(count):
            path = paths[i % len(paths)]
            start = time.perf_counter()
            connection.request("GET", path)
            response = connection.getresponse()
            response.read()
            latencies.append(time.perf_counter() - start)
            if response.status != 200:
                failures.append((path, response.status))
    finally:
        connection.close()


def test_serving_load(benchmark, config, builder, save_result, save_json, tmp_path):
    corpus = build_corpus(DatasetName.SNYT, config)
    result = builder.build().run(corpus.documents)
    interface = FacetedInterface.from_result(result)
    artifact_path = str(tmp_path / "facets.idx")

    with FacetIndex.build(result, path=artifact_path) as index:
        paths = _request_mix(interface)
        app = FacetApp(index)

        def run():
            latencies: list[float] = []
            failures: list[tuple[str, int]] = []
            with run_in_thread(app) as (host, port):
                barrier = threading.Barrier(CLIENTS + 1)
                threads = [
                    threading.Thread(
                        target=_client_worker,
                        args=(host, port, paths, REQUESTS_PER_CLIENT,
                              latencies, failures, barrier),
                    )
                    for _ in range(CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                started = time.perf_counter()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - started
            return latencies, failures, elapsed

        latencies, failures, elapsed = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        manifest_counts = {
            "documents": index.document_count,
            "facets": index.facet_count,
            "nodes": index.node_count,
        }
        checksum = index.checksum

    assert failures == []
    assert len(latencies) == CLIENTS * REQUESTS_PER_CLIENT
    ordered = sorted(latencies)
    p50_ms = _percentile(ordered, 0.50) * 1000.0
    p99_ms = _percentile(ordered, 0.99) * 1000.0
    rps = len(latencies) / elapsed

    save_result(
        "serving",
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests over "
        f"{manifest_counts['documents']} docs / "
        f"{manifest_counts['nodes']} facet nodes:\n"
        f"  p50 {p50_ms:.1f} ms   p99 {p99_ms:.1f} ms   {rps:.0f} req/s",
    )
    save_json(
        "serving",
        {
            "schema": JSON_SCHEMA,
            "scale": config.scale,
            "clients": CLIENTS,
            "requests": len(latencies),
            "errors": len(failures),
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "rps": rps,
            "elapsed_s": elapsed,
            "artifact": {**manifest_counts, "checksum": checksum},
        },
        extra_path=ROOT_JSON,
    )
    # The interface must feel interactive even under 8-way concurrency.
    assert p99_ms < 5000.0
