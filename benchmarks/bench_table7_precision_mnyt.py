"""EXP-T7 — Table VII: precision on MNYT."""

from repro.corpus.datasets import DatasetName
from repro.eval.precision import PrecisionStudy
from repro.corpus import build_corpus


def test_table7_precision_mnyt(benchmark, config, builder, save_result):
    study = PrecisionStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.MNYT, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table7_precision_mnyt", matrix.format_table())
    assert matrix.value("WordNet Hypernyms", "All") > matrix.value("Google", "All")
