"""EXP-US — Section V-E: the five-user browsing study.

Paper observations: keyword-search use drops (up to ~50%) as users move
to the facet hierarchies; task time drops (~25%); satisfaction holds
around 2.5/3.
"""

from repro.core.interface import FacetedInterface
from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.eval.user_study import UserStudy


def test_user_study(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    result = builder.with_top_k(400).build().run(corpus.documents)
    interface = FacetedInterface.from_result(result)
    study = UserStudy(interface, builder.world, config)
    out = benchmark.pedantic(study.run, rounds=1, iterations=1)

    lines = [
        "searches/repetition: "
        + ", ".join(f"{x:.2f}" for x in out.searches_per_repetition),
        "facet clicks/repetition: "
        + ", ".join(f"{x:.2f}" for x in out.clicks_per_repetition),
        "time/repetition (s): "
        + ", ".join(f"{x:.1f}" for x in out.time_per_repetition),
        f"search reduction (best user, the paper's 'up to'): "
        f"{out.max_search_reduction:.0%}",
        f"mean time reduction first->last: {out.time_reduction:.0%}",
        f"mean satisfaction (0-3): {out.mean_satisfaction:.2f}",
    ]
    save_result("user_study", "\n".join(lines))

    # Direction of every paper claim: searches drop by up to ~50%, task
    # time drops ~25%, satisfaction holds ~2.5, facet use grows.
    assert out.max_search_reduction >= 0.3
    assert out.clicks_per_repetition[-1] >= out.clicks_per_repetition[0]
    assert out.time_reduction > 0.1
    assert 2.0 <= out.mean_satisfaction <= 3.0
    assert all(s.completed for s in out.sessions)
