"""Ablation — Wikipedia redirect exploitation on/off.

Section IV-A: redirect pages let the title extractor capture name
variants ("Hillary Clinton" for "Hillary Rodham Clinton").  Disabling
them should reduce the number of important terms the extractor finds.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.extractors.wiki_titles import WikipediaTitleExtractor


def test_ablation_redirects(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(300, len(corpus))]
    with_redirects = WikipediaTitleExtractor(builder.substrates.wikipedia)
    without_redirects = WikipediaTitleExtractor(
        builder.substrates.wikipedia, use_redirects=False
    )

    def run():
        n_with = sum(len(with_redirects.extract(d)) for d in sample)
        n_without = sum(len(without_redirects.extract(d)) for d in sample)
        return n_with, n_without

    n_with, n_without = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_redirects",
        f"important terms over {len(sample)} docs: "
        f"with redirects {n_with}, without {n_without}",
    )
    assert n_with > n_without
