"""EXP-T5 — Table V: precision of the judged facet hierarchies on SNYT.

Qualified simulated annotators vote (4-of-5) on usefulness + placement
of every hierarchy term.  Paper shape: WordNet is the most precise
resource (hypernyms naturally form a hierarchy); Google is the noisiest
(it mines only titles and snippets).
"""

from repro.corpus.datasets import DatasetName
from repro.eval.precision import PrecisionStudy
from repro.corpus import build_corpus


def test_table5_precision_snyt(benchmark, config, builder, save_result):
    study = PrecisionStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.SNYT, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table5_precision_snyt", matrix.format_table())

    for extractor in ("NE", "Yahoo", "Wikipedia", "All"):
        assert matrix.value("WordNet Hypernyms", extractor) > matrix.value(
            "Google", extractor
        )
        assert matrix.value("Wikipedia Graph", extractor) > matrix.value(
            "Google", extractor
        )
    assert matrix.value("WordNet Hypernyms", "All") > 0.7
