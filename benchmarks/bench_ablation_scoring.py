"""Ablation — LLR ranking vs distributional (KL-contribution) ranking.

Section VI situates the paper's method in distributional analysis; this
ablation ranks candidate facet terms by their contribution to
KL(expanded || original) instead of the log-likelihood statistic and
compares top-200 recall.
"""

from repro.corpus.datasets import DatasetName
from repro.corpus import build_corpus
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.distributional import divergence_scores
from repro.core.selection import select_facet_terms
from repro.eval.goldset import build_gold_set
from repro.eval.recall import RecallStudy
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors


def test_ablation_scoring(benchmark, config, builder, save_result):
    corpus = build_corpus(DatasetName.SNYT, config)
    gold = build_gold_set(corpus, config, builder.world)
    study = RecallStudy(config, builder=builder)
    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    annotated = annotate_database(gold.documents, extractors)
    contextualized = contextualize(annotated, study._resource_list("All"))

    def run():
        llr = select_facet_terms(contextualized, top_k=200)
        llr_recall = study.recall(gold.terms, [c.term for c in llr])

        scores = divergence_scores(
            contextualized.annotated.vocabulary, contextualized.vocabulary
        )
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])[:200]
        kl_recall = study.recall(gold.terms, [t for t, _ in ranked])
        return {"log-likelihood": llr_recall, "kl-contribution": kl_recall}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_scoring",
        "\n".join(f"top-200 recall, {k}: {v:.3f}" for k, v in results.items()),
    )
    assert results["log-likelihood"] > 0
    assert results["kl-contribution"] > 0
