"""EXP-T3 — Table III: recall on the 24-source Newsblaster corpus (SNB)."""

from repro.corpus.datasets import DatasetName
from repro.eval.recall import RecallStudy
from repro.corpus import build_corpus


def test_table3_recall_snb(benchmark, config, builder, save_result):
    study = RecallStudy(config, builder=builder)
    corpus = build_corpus(DatasetName.SNB, config)
    matrix = benchmark.pedantic(lambda: study.run(corpus), rounds=1, iterations=1)
    save_result("table3_recall_snb", matrix.format_table())
    assert matrix.value("All", "All") == max(matrix.values.values())
    assert matrix.value("Wikipedia Graph", "All") > matrix.value(
        "Wikipedia Synonyms", "All"
    )
