"""EXP-F5 — Figure 5: a plain subsumption baseline without expansion.

The baseline latches onto high-document-frequency newswire filler
("people", "report", "new", ...) rather than facet-worthy terms — the
paper's motivation for the expansion pipeline.
"""

from repro.harness.figures import figure5_baseline_terms
from repro.kb import build_world


def test_fig5_baseline_subsumption(benchmark, config, save_result):
    terms = benchmark.pedantic(
        lambda: figure5_baseline_terms(config), rounds=1, iterations=1
    )
    save_result("fig5_baseline_subsumption", ", ".join(terms))
    # The baseline's terms are overwhelmingly NOT facet terms.
    taxonomy = build_world(config).taxonomy
    facet_like = sum(1 for t in terms if t in taxonomy)
    assert facet_like <= len(terms) * 0.3
